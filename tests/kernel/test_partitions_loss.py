"""Network splits and lossy-fabric robustness of the group service."""

import pytest

from repro.cluster import Cluster, ClusterSpec, FaultInjector
from repro.kernel import KernelTimings, PhoenixKernel
from repro.sim import Simulator


def build(seed=5, partitions=4, loss_rate=0.0, interval=10.0):
    sim = Simulator(seed=seed)
    cluster = Cluster(
        sim, ClusterSpec.build(partitions=partitions, computes=2, loss_rate=loss_rate)
    )
    kernel = PhoenixKernel(cluster, timings=KernelTimings(heartbeat_interval=interval))
    kernel.boot()
    return sim, cluster, kernel


def split_all(cluster, injector, side_a, side_b):
    for net in cluster.networks:
        injector.split_network(net, [side_a, side_b])


def heal_all(cluster, injector):
    for net in cluster.networks:
        injector.heal_network(net)


def sides(cluster):
    a = set(cluster.partition("p0").all_nodes) | set(cluster.partition("p1").all_nodes)
    b = set(cluster.partition("p2").all_nodes) | set(cluster.partition("p3").all_nodes)
    return a, b


def all_views(kernel):
    return {
        p.partition_id: kernel.gsd(p.partition_id).metagroup.view
        for p in kernel.cluster.partitions
    }


def test_split_degrades_gracefully_no_cross_side_takeover():
    """During a full split, the minority side cannot migrate the other
    side's GSDs (targets unreachable) — it fails gracefully instead of
    spawning doppelgangers."""
    sim, cluster, kernel = build()
    injector = FaultInjector(cluster)
    sim.run(until=20.001)
    side_a, side_b = sides(cluster)
    split_all(cluster, injector, side_a, side_b)
    sim.run(until=150.0)
    # No partition's GSD moved: every placement still points at its server.
    for part in cluster.partitions:
        assert kernel.placement[("gsd", part.partition_id)] == part.server
    assert sim.trace.records("recovery.failed")  # attempts were made and aborted


def test_views_reconverge_after_heal():
    """Ring-beat anti-entropy merges the diverged memberships."""
    sim, cluster, kernel = build()
    injector = FaultInjector(cluster)
    sim.run(until=20.001)
    side_a, side_b = sides(cluster)
    split_all(cluster, injector, side_a, side_b)
    sim.run(until=120.0)
    # Divergence happened: the leader's side evicted the other side.
    view_ids = {v.view_id for v in all_views(kernel).values()}
    assert len(view_ids) > 1
    heal_all(cluster, injector)
    sim.run(until=450.0)
    views = all_views(kernel)
    assert len({v.view_id for v in views.values()}) == 1
    members = {tuple(sorted(n for _, n in v.members)) for v in views.values()}
    assert members == {("p0s0", "p1s0", "p2s0", "p3s0")}
    # Exactly one leader.
    leaders = [pid for pid, v in views.items() if v.leader()[1] == kernel.gsd(pid).node_id
               and kernel.gsd(pid).metagroup.is_leader]
    assert len(leaders) == 1


def test_evicted_member_rejoins_via_view_push():
    """A member that learns it was evicted (stale view pushed to it)
    rejoins through the current leader."""
    sim, cluster, kernel = build()
    injector = FaultInjector(cluster)
    sim.run(until=20.001)
    side_a, side_b = sides(cluster)
    split_all(cluster, injector, side_a, side_b)
    sim.run(until=120.0)
    heal_all(cluster, injector)
    sim.run(until=450.0)
    joins = sim.trace.records("member.joined")
    joined = {r["partition"] for r in joins}
    assert {"p2", "p3"} <= joined


def test_lossy_networks_no_false_positives():
    """1% independent loss per fabric: triple-redundant heartbeats mean a
    beat only 'misses' if all three copies drop — no false detections in
    a 20-interval window."""
    sim, cluster, kernel = build(seed=9, loss_rate=0.01, interval=10.0)
    sim.run(until=200.0)
    full_misses = [
        r for r in sim.trace.records("failure.detected") if r.get("network") is None
    ]
    assert full_misses == []


def test_lossy_networks_detection_still_works():
    """Real failures are still caught on lossy fabrics."""
    sim, cluster, kernel = build(seed=9, loss_rate=0.01, interval=10.0)
    injector = FaultInjector(cluster)
    sim.run(until=20.001)
    injector.crash_node("p1c0")
    sim.run(until=60.0)
    diag = [r for r in sim.trace.records("failure.diagnosed", component="wd", kind="node")]
    assert any(r["node"] == "p1c0" for r in diag)


@pytest.mark.parametrize("loss_rate", [0.05])
def test_heavy_loss_may_cause_nic_suspicions_but_no_node_verdicts(loss_rate):
    """Even at 5% loss, per-NIC suspicion can fire (a dropped beat looks
    like a quiet NIC) but healthy nodes are never declared dead, and
    suspicions clear when the next beat lands."""
    sim, cluster, kernel = build(seed=11, loss_rate=loss_rate, interval=10.0)
    sim.run(until=300.0)
    node_verdicts = sim.trace.records("failure.diagnosed", kind="node")
    assert node_verdicts == []
    process_verdicts = sim.trace.records("failure.diagnosed", kind="process")
    assert process_verdicts == []
