"""Migration retries: the backup target dies too, the ring keeps going."""

import pytest

from repro.cluster import Cluster, ClusterSpec, FaultInjector
from repro.kernel import KernelTimings, PhoenixKernel
from repro.sim import Simulator


def build():
    sim = Simulator(seed=8)
    cluster = Cluster(sim, ClusterSpec.build(partitions=3, computes=3))
    kernel = PhoenixKernel(cluster, timings=KernelTimings(heartbeat_interval=5.0))
    kernel.boot()
    injector = FaultInjector(cluster)
    sim.run(until=10.001)
    return sim, cluster, kernel, injector


def test_backup_dead_before_migration_uses_compute_node():
    sim, cluster, kernel, injector = build()
    injector.crash_node("p1b0")  # backup first
    sim.run(until=sim.now + 20.0)
    injector.crash_node("p1s0")  # then the server
    sim.run(until=sim.now + 30.0)
    target = kernel.placement[("gsd", "p1")]
    assert target.startswith("p1c")  # fell through to a compute node
    assert kernel.gsd("p1").alive
    view = kernel.gsd("p0").metagroup.view
    assert ("p1", target) in view.members


def test_backup_dies_during_migration_retries_next_candidate():
    sim, cluster, kernel, injector = build()
    injector.crash_node("p1s0")
    # The ring detects at ~5.1s, diagnoses at ~0.3s, selects for 0.9s,
    # then spends gsd_spawn_time=2s starting on p1b0.  Kill p1b0 in that
    # window so the first migration attempt fails.
    t0 = sim.now
    injector.at(5.1 + 0.3 + 0.9 + 1.0, "crash_node", "p1b0")
    sim.run(until=t0 + 40.0)
    assert sim.trace.records("migration.retry", node="p1s0")
    target = kernel.placement[("gsd", "p1")]
    assert target.startswith("p1c")
    assert kernel.gsd("p1").alive
    recovered = sim.trace.records("failure.recovered", component="gsd", kind="node")
    assert recovered and recovered[0]["dst"] == target


def test_whole_partition_dead_reports_no_target():
    sim, cluster, kernel, injector = build()
    for node in cluster.partition("p1").all_nodes:
        injector.crash_node(node)
    sim.run(until=sim.now + 40.0)
    fails = sim.trace.records("recovery.failed", component="gsd", node="p1s0")
    assert fails and fails[0]["reason"] == "no target"
    # The rest of the cluster is unaffected.
    view = kernel.gsd("p0").metagroup.view
    assert not any(part == "p1" for part, _ in view.members)
    assert kernel.gsd("p0").alive and kernel.gsd("p2").alive
