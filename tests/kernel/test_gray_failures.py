"""Gray failures: degradation profiles, suspicion, epochs, and fencing.

The regression at the heart of this file: an asymmetric split (the
leader's outbound links dead, inbound alive) followed by a heal must
never yield two leaders at the same epoch, and the stale leader must
reconcile (stand down or rejoin) instead of re-asserting itself.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ClusterSpec, FaultInjector
from repro.cluster.network import LinkDegradation
from repro.errors import ClusterError
from repro.kernel import KernelTimings, PhoenixKernel
from repro.kernel.group.metagroup import View
from repro.kernel.group.monitor import HeartbeatMonitor
from repro.sim import Simulator


def _leader_claims(kernel):
    claims = []
    for (service, node), daemon in kernel._live.items():
        if service == "gsd" and daemon.alive:
            mg = daemon.metagroup
            if mg.view is not None and mg.is_leader:
                claims.append((node, mg.view.epoch))
    return claims


def _live_gsd(kernel, predicate):
    for (service, node), daemon in kernel._live.items():
        if service == "gsd" and daemon.alive and predicate(node, daemon):
            return daemon
    return None


# -- link degradation primitives ----------------------------------------------
def test_degrade_link_drops_and_marks(sim, kernel, injector):
    cluster = kernel.cluster
    target = cluster.partitions[0].computes[0]
    injector.degrade_link(target, "data", loss=1.0, direction="out", case="t")
    before = sim.trace.counter("net.data.degraded_drops")
    sim.run(until=sim.now + 30.0)
    assert sim.trace.counter("net.data.degraded_drops") > before
    assert any(sim.trace.iter_records("fault.injected", kind="degrade", node=target))
    injector.restore_link(target, "data", case="t")
    assert any(sim.trace.iter_records("fault.repaired", kind="degrade", node=target))
    assert cluster.networks["data"].degradation(target, "out") is None


def test_degradation_profile_validation():
    with pytest.raises(ClusterError):
        LinkDegradation(loss=1.5)
    with pytest.raises(ClusterError):
        LinkDegradation(latency_mult=0.5)


def test_flap_link_emits_paired_edge_marks(sim, kernel, injector):
    target = kernel.cluster.partitions[0].computes[0]
    injector.flap_link(target, "data", flaps=2, down_time=3.0, up_time=3.0, case="f")
    sim.run(until=sim.now + 20.0)
    downs = list(sim.trace.iter_records("fault.injected", kind="flap", node=target))
    ups = list(sim.trace.iter_records("fault.repaired", kind="flap", node=target))
    assert len(downs) == 2 and len(ups) == 2
    assert kernel.cluster.networks["data"].link_up(target)


def test_repair_marks_on_restores(sim, kernel, injector):
    cluster = kernel.cluster
    target = cluster.partitions[0].computes[0]
    injector.fail_nic(target, "data")
    injector.restore_nic(target, "data")
    assert any(sim.trace.iter_records("fault.repaired", kind="network", node=target))
    injector.crash_node(target)
    injector.boot_node(target)
    assert any(sim.trace.iter_records("fault.repaired", kind="node", node=target))


# -- suspicion-based detection -------------------------------------------------
def test_lossy_link_does_not_cause_failover(sim, injector, kernel):
    """20% one-way loss on a compute's links: NIC-level suspicion may
    fire, but no process/node verdict and no takeover ever happens."""
    cluster = kernel.cluster
    target = cluster.partitions[1].computes[0]
    for net in cluster.networks:
        injector.degrade_link(target, net, loss=0.2, direction="out")
    sim.run(until=sim.now + 20 * kernel.timings.heartbeat_interval)
    full = [
        r for r in sim.trace.iter_records("failure.diagnosed")
        if r.get("kind") in ("process", "node")
    ]
    assert full == []
    assert not any(sim.trace.iter_records("leader.takeover"))
    assert len(_leader_claims(kernel)) == 1


@given(
    threshold=st.integers(min_value=1, max_value=6),
    decay=st.floats(min_value=0.1, max_value=3.0),
)
@settings(max_examples=25, deadline=None)
def test_property_suspicion_decay_never_starves_detection(threshold, decay):
    """Whatever the threshold/decay, a subject that goes fully silent is
    detected within a bounded number of deadline windows: decay only
    applies on *received* beats, so it can never eat a real failure."""
    nets = ["a", "b", "c"]
    interval, grace = 10.0, 0.5
    sim = Simulator(seed=0)
    events = []
    mon = HeartbeatMonitor(
        sim, nets, interval=interval, grace=grace,
        on_nic_miss=lambda s, n: None,
        on_nic_restore=lambda s, n: None,
        on_full_miss=lambda s: events.append(sim.now),
        on_return=lambda s: None,
        suspicion_threshold=float(threshold),
        suspicion_decay=decay,
    )
    mon.expect("n1")
    last_beat = 0.0
    for i in range(1, 4):  # healthy beats, then total silence
        last_beat = i * (interval - 1.0)
        for net in nets:
            sim.schedule_at(last_beat, mon.beat, "n1", net)
    # Each silent window adds len(nets) to the score with zero decay.
    windows = -(-threshold // len(nets))  # ceil
    bound = last_beat + (windows + 1) * (interval + grace)
    sim.run(until=bound + 1.0)
    assert events, "full silence was never detected"
    assert events[0] <= bound


# -- leader epochs and fencing -------------------------------------------------
def test_stale_epoch_view_is_fenced(sim, kernel):
    leader = _live_gsd(kernel, lambda n, d: d.metagroup.is_leader)
    mg = leader.metagroup
    current = mg.view
    stale = View(view_id=current.view_id + 7, members=current.members, epoch=current.epoch - 1)
    assert not mg.install_view(stale)
    assert mg.view is current
    assert any(sim.trace.iter_records("gsd.fenced", target="view", node=mg.me))


def test_asym_split_and_heal_no_overlapping_epochs(sim):
    """The tentpole regression: leader's outbound dies, a takeover bumps
    the epoch, the heal reconciles the stale leader — and at no sampled
    instant do two live GSDs claim leadership at the same epoch."""
    cluster = Cluster(sim, ClusterSpec.build(partitions=3, computes=2))
    timings = KernelTimings(heartbeat_interval=5.0, deadline_grace=0.1)
    kernel = PhoenixKernel(cluster, timings=timings)
    kernel.boot()
    sim.run(until=10.0)
    injector = FaultInjector(cluster)
    (leader_node, epoch0), = _leader_claims(kernel)

    for net in cluster.networks:
        injector.degrade_link(leader_node, net, loss=1.0, direction="out")

    def sample_until(until):
        while sim.now < until:
            sim.run(until=sim.now + 1.0)
            claims = _leader_claims(kernel)
            epochs = [e for _, e in claims]
            assert len(epochs) == len(set(epochs)), f"same-epoch dual leaders: {claims}"

    sample_until(sim.now + 12 * timings.heartbeat_interval)
    takeovers = list(sim.trace.iter_records("leader.takeover"))
    assert len(takeovers) == 1
    assert takeovers[0].get("epoch") == epoch0 + 1

    for net in cluster.networks:
        injector.restore_link(leader_node, net)
    sample_until(sim.now + 12 * timings.heartbeat_interval)

    # Post-heal: exactly one leader, on the new lineage, and the stale
    # leader reconciled (stood down after its join was refused).
    claims = _leader_claims(kernel)
    assert len(claims) == 1
    assert claims[0][0] != leader_node
    assert claims[0][1] == epoch0 + 1
    assert any(sim.trace.iter_records("gsd.superseded", node=leader_node))
    views = {
        d.metagroup.view.key
        for (svc, _), d in kernel._live.items()
        if svc == "gsd" and d.alive and d.metagroup.view is not None
    }
    assert len(views) == 1
