"""KernelTimings, DaemonRegistry, View, and miscellaneous kernel units."""

import pytest

from repro.errors import KernelError, ServiceUnavailable
from repro.kernel import KernelTimings
from repro.kernel.daemon import DaemonRegistry
from repro.kernel.group.metagroup import View

# -- timings -----------------------------------------------------------------


def test_default_timings_match_paper_calibration():
    t = KernelTimings()
    assert t.heartbeat_interval == 30.0
    assert t.probe_window == pytest.approx(0.29)
    assert t.nic_analysis_delay == pytest.approx(348e-6)
    assert t.local_check_delay == pytest.approx(12e-6)
    assert t.service_check_period == 30.0


def test_with_interval_copies():
    t = KernelTimings().with_interval(5.0)
    assert t.heartbeat_interval == 5.0
    assert t.probe_window == pytest.approx(0.29)  # untouched


def test_service_check_interval_override():
    t = KernelTimings(service_check_interval=2.0)
    assert t.service_check_period == 2.0


def test_spawn_time_lookup_and_fallback():
    t = KernelTimings()
    assert t.spawn_time("gsd") == 2.0
    assert t.spawn_time("wd") == 0.1
    assert t.spawn_time("ckpt.replica") == t.spawn_time("ckpt")
    assert t.spawn_time("pws") == KernelTimings.DEFAULT_USER_SPAWN_TIME
    t2 = KernelTimings(extra={"spawn.pws": 0.7})
    assert t2.spawn_time("pws") == 0.7


def test_timings_validation():
    with pytest.raises(KernelError):
        KernelTimings(heartbeat_interval=0)
    with pytest.raises(KernelError):
        KernelTimings(deadline_grace=0)
    with pytest.raises(KernelError):
        KernelTimings(ping_timeout=0.5, probe_window=0.3)
    with pytest.raises(KernelError):
        KernelTimings(node_confirm_rounds=-1)
    with pytest.raises(KernelError):
        KernelTimings(daemon_cpu_fraction=1.5)


# -- registry ----------------------------------------------------------------


def test_registry_create_unknown_service():
    registry = DaemonRegistry()
    with pytest.raises(ServiceUnavailable):
        registry.create("nope", None, "n1")


def test_registry_known_lists_registrations():
    registry = DaemonRegistry()
    registry.register("b", lambda k, n: None)
    registry.register("a", lambda k, n: None)
    assert registry.known() == ["a", "b"]


def test_register_user_service_rejects_kernel_names(kernel):
    for name in ("gsd", "es", "db", "ckpt", "wd", "ppm", "detector", "config", "security"):
        with pytest.raises(KernelError):
            kernel.register_user_service(name, lambda k, n: None, "p0")


# -- views ------------------------------------------------------------------


def test_view_roles_and_payload_roundtrip():
    view = View(view_id=3, members=(("p0", "n0"), ("p1", "n1"), ("p2", "n2")))
    assert view.leader() == ("p0", "n0")
    assert view.princess() == ("p1", "n1")
    assert view.contains_node("n2")
    assert not view.contains_node("nx")
    assert View.from_payload(view.to_payload()) == view


def test_single_member_view_princess_is_leader():
    view = View(view_id=1, members=(("p0", "n0"),))
    assert view.princess() == view.leader()


# -- WD local supervision -----------------------------------------------------


def test_wd_restarts_dead_detector(fast_kernel, sim):
    from repro.cluster import FaultInjector

    injector = FaultInjector(fast_kernel.cluster)
    sim.run(until=6.0)
    injector.kill_process("p1c1", "detector")
    sim.run(until=sim.now + 8.0)  # next WD beat cycle restarts it
    assert fast_kernel.cluster.hostos("p1c1").process_alive("detector")
    marks = sim.trace.records("failure.recovered", component="detector", node="p1c1")
    assert marks and marks[0]["kind"] == "process"


def test_wd_restarts_dead_ppm(fast_kernel, sim):
    from repro.cluster import FaultInjector

    injector = FaultInjector(fast_kernel.cluster)
    sim.run(until=6.0)
    injector.kill_process("p1c1", "ppm")
    sim.run(until=sim.now + 8.0)
    assert fast_kernel.cluster.hostos("p1c1").process_alive("ppm")
