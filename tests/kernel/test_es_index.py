"""SubscriptionIndex equivalence with the linear scan, and the debounced
subscription checkpoint."""

import random

from repro.kernel import ports
from repro.kernel.events import types as ev
from repro.kernel.events.filters import Subscription, SubscriptionIndex
from repro.kernel.events.types import Event
from tests.kernel.conftest import drive

# -- index unit behaviour ----------------------------------------------------


def sub(cid, *types, where=None):
    return Subscription(cid, "n", "p", types=tuple(types), where=where or {})


def test_exact_type_lookup():
    index = SubscriptionIndex()
    index.add(sub("a", "node.failure"))
    index.add(sub("b", "node.recovery"))
    assert [s.consumer_id for s in index.candidates("node.failure")] == ["a"]


def test_family_wildcard_lookup():
    index = SubscriptionIndex()
    index.add(sub("fam", "node.*"))
    index.add(sub("other", "app.*"))
    assert [s.consumer_id for s in index.candidates("node.failure")] == ["fam"]
    # "node.*" must NOT match the bare type "node" (startswith "node.").
    assert index.candidates("node") == []


def test_catch_all_sees_everything():
    index = SubscriptionIndex()
    index.add(sub("all"))
    assert [s.consumer_id for s in index.candidates("anything.at.all")] == ["all"]
    assert [s.consumer_id for s in index.candidates("dotless")] == ["all"]


def test_candidates_preserve_registration_order():
    index = SubscriptionIndex()
    index.add(sub("late", "x.y"))
    index.add(sub("all"))
    index.add(sub("fam", "x.*"))
    got = [s.consumer_id for s in index.candidates("x.y")]
    assert got == ["late", "all", "fam"]


def test_readd_keeps_original_slot():
    index = SubscriptionIndex()
    index.add(sub("first", "t.a"))
    index.add(sub("second", "t.a"))
    index.add(sub("first", "t.a", where={"k": 1}))  # refresh, same slot
    got = [s.consumer_id for s in index.candidates("t.a")]
    assert got == ["first", "second"]
    assert index.get("first").where == {"k": 1}


def test_remove_cleans_every_table():
    index = SubscriptionIndex()
    index.add(sub("c", "a.b", "x.*"))
    index.add(sub("all"))
    assert index.remove("c").consumer_id == "c"
    assert index.remove("c") is None
    assert "c" not in index
    assert [s.consumer_id for s in index.candidates("a.b")] == ["all"]
    assert [s.consumer_id for s in index.candidates("x.q")] == ["all"]
    assert len(index) == 1


def test_index_equivalent_to_linear_scan_on_random_stream():
    """Property check: for a random registry and random events, the index
    delivers to exactly the same consumers in exactly the same order as
    the old full scan with Subscription.matches."""
    rng = random.Random(7)
    atoms = ["node", "app", "job", "net", "failure", "recovery", "started", "exited"]

    def rand_type():
        return ".".join(rng.choice(atoms) for _ in range(rng.randint(1, 3)))

    def rand_pattern():
        t = rand_type()
        return t + ".*" if rng.random() < 0.4 else t

    linear: dict[str, Subscription] = {}
    index = SubscriptionIndex()
    for step in range(600):
        roll = rng.random()
        if roll < 0.25:
            cid = f"c{rng.randint(0, 40)}"
            patterns = tuple(rand_pattern() for _ in range(rng.randint(0, 3)))
            where = {"k": rng.randint(0, 2)} if rng.random() < 0.3 else {}
            s = Subscription(cid, "n", "p", types=patterns, where=where)
            linear[cid] = s  # dict re-add keeps the original scan position
            index.add(s)
        elif roll < 0.35:
            cid = f"c{rng.randint(0, 40)}"
            linear.pop(cid, None)
            index.remove(cid)
        else:
            event = Event(
                event_id=f"e{step}", type=rand_type(), source="s", partition="p0",
                time=float(step), data={"k": rng.randint(0, 2)},
            )
            via_scan = [s.consumer_id for s in linear.values() if s.matches(event)]
            via_index = [
                s.consumer_id for s in index.candidates(event.type) if s.matches(event)
            ]
            assert via_index == via_scan, f"divergence at step {step} on {event.type!r}"


# -- where-key equality buckets ----------------------------------------------


def test_where_key_pruning_skips_other_nodes():
    index = SubscriptionIndex()
    index.add(sub("mine", "node.*", where={"node": "n1"}))
    index.add(sub("theirs", "node.*", where={"node": "n2"}))
    index.add(sub("any", "node.*"))
    got = [s.consumer_id for s in index.candidates("node.failure", {"node": "n1"})]
    assert got == ["mine", "any"]
    # Without data the index cannot prune — every type match is a candidate.
    assert len(index.candidates("node.failure")) == 3


def test_where_key_operator_equality_is_indexed_like_plain_value():
    index = SubscriptionIndex()
    index.add(sub("op", "t.a", where={"node": {"op": "==", "value": "n1"}}))
    index.add(sub("plain", "t.a", where={"node": "n1"}))
    assert [s.consumer_id for s in index.candidates("t.a", {"node": "n1"})] == ["op", "plain"]
    assert index.candidates("t.a", {"node": "n2"}) == []


def test_where_key_non_equality_conditions_are_never_pruned():
    """Only equality constraints may be pruned by the bucket probe; every
    other operator must fall through to the per-candidate check."""
    index = SubscriptionIndex()
    index.add(sub("ne", "t.a", where={"node": {"op": "!=", "value": "n1"}}))
    index.add(sub("inop", "t.a", where={"node": {"op": "in", "value": ["n1", "n2"]}}))
    index.add(sub("unhashable", "t.a", where={"node": ["n1"]}))  # eq to a list
    got = [s.consumer_id for s in index.candidates("t.a", {"node": "n9"})]
    assert got == ["ne", "inop", "unhashable"]


def test_where_key_missing_field_prunes_every_pinned_sub():
    index = SubscriptionIndex()
    index.add(sub("pinned", "t.a", where={"node": "n1"}))
    index.add(sub("free", "t.a"))
    assert [s.consumer_id for s in index.candidates("t.a", {"k": 1})] == ["free"]
    # An unhashable event value cannot equal any hashable pinned value.
    assert [s.consumer_id for s in index.candidates("t.a", {"node": ["n1"]})] == ["free"]


def test_where_key_buckets_cleaned_on_remove_and_readd():
    index = SubscriptionIndex()
    index.add(sub("c", "t.a", where={"node": "n1"}))
    index.add(sub("c", "t.a", where={"node": "n2"}))  # re-add moves buckets
    assert index.candidates("t.a", {"node": "n1"}) == []
    assert [s.consumer_id for s in index.candidates("t.a", {"node": "n2"})] == ["c"]
    index.remove("c")
    assert index._eq["node"] == {}
    assert index._eq_constrained["node"] == set()


def test_where_key_index_equivalent_to_scan_on_random_stream():
    """Property check with ``data`` in play: random node-keyed clauses
    (plain, operator, unhashable) never change the delivered set or order
    relative to the naive full scan."""
    rng = random.Random(17)
    nodes = ["n0", "n1", "n2", "n3"]

    def rand_where():
        roll = rng.random()
        if roll < 0.25:
            return {}
        if roll < 0.5:
            return {"node": rng.choice(nodes)}
        if roll < 0.65:
            return {"node": {"op": "==", "value": rng.choice(nodes)}}
        if roll < 0.75:
            return {"node": {"op": "!=", "value": rng.choice(nodes)}}
        if roll < 0.85:
            return {"node": {"op": "in", "value": rng.sample(nodes, 2)}}
        if roll < 0.95:
            return {"k": rng.randint(0, 2)}
        return {"node": rng.sample(nodes, 1)}  # unhashable equality value

    linear: dict[str, Subscription] = {}
    index = SubscriptionIndex()
    for step in range(800):
        roll = rng.random()
        if roll < 0.25:
            cid = f"c{rng.randint(0, 30)}"
            s = Subscription(cid, "n", "p", types=("ev.*",), where=rand_where())
            linear[cid] = s
            index.add(s)
        elif roll < 0.35:
            cid = f"c{rng.randint(0, 30)}"
            linear.pop(cid, None)
            index.remove(cid)
        else:
            data = {}
            if rng.random() < 0.85:
                data["node"] = rng.choice(nodes + [["list"]])  # sometimes unhashable
            if rng.random() < 0.5:
                data["k"] = rng.randint(0, 2)
            event = Event(
                event_id=f"e{step}", type="ev.tick", source="s", partition="p0",
                time=float(step), data=data,
            )
            via_scan = [s.consumer_id for s in linear.values() if s.matches(event)]
            via_index = [
                s.consumer_id
                for s in index.candidates(event.type, event.data)
                if s.matches(event)
            ]
            assert via_index == via_scan, f"divergence at step {step} on {data!r}"


# -- checkpoint debounce -----------------------------------------------------


def es_daemon(kernel, partition="p0"):
    return kernel.live_daemon("es", kernel.placement[("es", partition)])


def test_subscribe_burst_coalesces_into_one_checkpoint(kernel, sim):
    es = es_daemon(kernel)
    before = es.ckpt_writes
    sigs = [
        kernel.client("p0c0").subscribe(f"burst{i}", "sink", types=(ev.NODE_FAILURE,))
        for i in range(8)
    ]
    for sig in sigs:
        assert drive(sim, sig)["ok"]
    sim.run(until=sim.now + 1.0)  # debounce window + save round trip
    assert es.ckpt_writes == before + 1
    assert sim.trace.counter("es.ckpt_writes") >= 1


def test_spaced_changes_each_get_their_own_checkpoint(kernel, sim):
    es = es_daemon(kernel)
    before = es.ckpt_writes
    for i in range(3):
        assert drive(sim, kernel.client("p0c0").subscribe(f"slow{i}", "sink"))["ok"]
        sim.run(until=sim.now + 1.0)  # well past the debounce window
    assert es.ckpt_writes == before + 3


def test_debounced_checkpoint_still_recovers_registry(kernel, sim, injector):
    """The debounce must not lose the registry: after a burst and an ES
    restart, the recovered daemon still knows every subscriber."""
    es = es_daemon(kernel)
    for i in range(5):
        assert drive(sim, kernel.client("p0c0").subscribe(f"r{i}", "sink"))["ok"]
    sim.run(until=sim.now + 1.0)  # flush lands in the checkpoint store
    injector.kill_process(es.node_id, "es")
    sim.run(until=sim.now + 40.0)  # GSD diagnoses and restarts the daemon
    fresh = es_daemon(kernel)
    assert fresh is not es and fresh.alive
    recovered = {s.consumer_id for s in fresh.subscriptions()}
    assert {f"r{i}" for i in range(5)} <= recovered
