"""SubscriptionIndex equivalence with the linear scan, and the debounced
subscription checkpoint."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import ports
from repro.kernel.events import types as ev
from repro.kernel.events.filters import Subscription, SubscriptionIndex
from repro.kernel.events.types import Event
from tests.kernel.conftest import drive

# -- index unit behaviour ----------------------------------------------------


def sub(cid, *types, where=None):
    return Subscription(cid, "n", "p", types=tuple(types), where=where or {})


def test_exact_type_lookup():
    index = SubscriptionIndex()
    index.add(sub("a", "node.failure"))
    index.add(sub("b", "node.recovery"))
    assert [s.consumer_id for s in index.candidates("node.failure")] == ["a"]


def test_family_wildcard_lookup():
    index = SubscriptionIndex()
    index.add(sub("fam", "node.*"))
    index.add(sub("other", "app.*"))
    assert [s.consumer_id for s in index.candidates("node.failure")] == ["fam"]
    # "node.*" must NOT match the bare type "node" (startswith "node.").
    assert index.candidates("node") == []


def test_catch_all_sees_everything():
    index = SubscriptionIndex()
    index.add(sub("all"))
    assert [s.consumer_id for s in index.candidates("anything.at.all")] == ["all"]
    assert [s.consumer_id for s in index.candidates("dotless")] == ["all"]


def test_candidates_preserve_registration_order():
    index = SubscriptionIndex()
    index.add(sub("late", "x.y"))
    index.add(sub("all"))
    index.add(sub("fam", "x.*"))
    got = [s.consumer_id for s in index.candidates("x.y")]
    assert got == ["late", "all", "fam"]


def test_readd_keeps_original_slot():
    index = SubscriptionIndex()
    index.add(sub("first", "t.a"))
    index.add(sub("second", "t.a"))
    index.add(sub("first", "t.a", where={"k": 1}))  # refresh, same slot
    got = [s.consumer_id for s in index.candidates("t.a")]
    assert got == ["first", "second"]
    assert index.get("first").where == {"k": 1}


def test_remove_cleans_every_table():
    index = SubscriptionIndex()
    index.add(sub("c", "a.b", "x.*"))
    index.add(sub("all"))
    assert index.remove("c").consumer_id == "c"
    assert index.remove("c") is None
    assert "c" not in index
    assert [s.consumer_id for s in index.candidates("a.b")] == ["all"]
    assert [s.consumer_id for s in index.candidates("x.q")] == ["all"]
    assert len(index) == 1


def test_index_equivalent_to_linear_scan_on_random_stream():
    """Property check: for a random registry and random events, the index
    delivers to exactly the same consumers in exactly the same order as
    the old full scan with Subscription.matches."""
    rng = random.Random(7)
    atoms = ["node", "app", "job", "net", "failure", "recovery", "started", "exited"]

    def rand_type():
        return ".".join(rng.choice(atoms) for _ in range(rng.randint(1, 3)))

    def rand_pattern():
        t = rand_type()
        return t + ".*" if rng.random() < 0.4 else t

    linear: dict[str, Subscription] = {}
    index = SubscriptionIndex()
    for step in range(600):
        roll = rng.random()
        if roll < 0.25:
            cid = f"c{rng.randint(0, 40)}"
            patterns = tuple(rand_pattern() for _ in range(rng.randint(0, 3)))
            where = {"k": rng.randint(0, 2)} if rng.random() < 0.3 else {}
            s = Subscription(cid, "n", "p", types=patterns, where=where)
            linear[cid] = s  # dict re-add keeps the original scan position
            index.add(s)
        elif roll < 0.35:
            cid = f"c{rng.randint(0, 40)}"
            linear.pop(cid, None)
            index.remove(cid)
        else:
            event = Event(
                event_id=f"e{step}", type=rand_type(), source="s", partition="p0",
                time=float(step), data={"k": rng.randint(0, 2)},
            )
            via_scan = [s.consumer_id for s in linear.values() if s.matches(event)]
            via_index = [
                s.consumer_id for s in index.candidates(event.type) if s.matches(event)
            ]
            assert via_index == via_scan, f"divergence at step {step} on {event.type!r}"


# -- where-key equality buckets ----------------------------------------------


def test_where_key_pruning_skips_other_nodes():
    index = SubscriptionIndex()
    index.add(sub("mine", "node.*", where={"node": "n1"}))
    index.add(sub("theirs", "node.*", where={"node": "n2"}))
    index.add(sub("any", "node.*"))
    got = [s.consumer_id for s in index.candidates("node.failure", {"node": "n1"})]
    assert got == ["mine", "any"]
    # Without data the index cannot prune — every type match is a candidate.
    assert len(index.candidates("node.failure")) == 3


def test_where_key_operator_equality_is_indexed_like_plain_value():
    index = SubscriptionIndex()
    index.add(sub("op", "t.a", where={"node": {"op": "==", "value": "n1"}}))
    index.add(sub("plain", "t.a", where={"node": "n1"}))
    assert [s.consumer_id for s in index.candidates("t.a", {"node": "n1"})] == ["op", "plain"]
    assert index.candidates("t.a", {"node": "n2"}) == []


def test_where_key_unindexable_conditions_are_never_pruned():
    """Only equality buckets and numeric range constraints may prune;
    ``!=``/``in``/``contains``, unhashable equality values, and range
    operators with *non-numeric* bounds (where cross-type comparison can
    legitimately succeed) must fall through to the per-candidate check."""
    index = SubscriptionIndex()
    index.add(sub("ne", "t.a", where={"node": {"op": "!=", "value": "n1"}}))
    index.add(sub("inop", "t.a", where={"node": {"op": "in", "value": ["n1", "n2"]}}))
    index.add(sub("unhashable", "t.a", where={"node": ["n1"]}))  # eq to a list
    index.add(sub("strbound", "t.a", where={"node": {"op": "<", "value": "zz"}}))
    got = [s.consumer_id for s in index.candidates("t.a", {"node": "n9"})]
    assert got == ["ne", "inop", "unhashable", "strbound"]


# -- where-key numeric range pruning -----------------------------------------


def test_where_key_numeric_range_pruning():
    index = SubscriptionIndex(indexed_keys=("cpu_pct",))
    index.add(sub("high", "m.*", where={"cpu_pct": {"op": ">", "value": 90}}))
    index.add(sub("low", "m.*", where={"cpu_pct": {"op": "<=", "value": 50.0}}))
    index.add(sub("any", "m.*"))

    def got(data):
        return [s.consumer_id for s in index.candidates("m.tick", data)]

    assert got({"cpu_pct": 95}) == ["high", "any"]
    assert got({"cpu_pct": 50}) == ["low", "any"]
    assert got({"cpu_pct": 90}) == ["any"]  # >90 strict, <=50 fails too
    assert got({"cpu_pct": 70.5}) == ["any"]
    # Missing field: range operators never match it, both subs prune.
    assert got({"other": 1}) == ["any"]
    # Without data the index cannot prune at all.
    assert len(index.candidates("m.tick")) == 3


def test_where_key_range_boundary_semantics_match_operators():
    index = SubscriptionIndex(indexed_keys=("v",))
    index.add(sub("lt", "t.a", where={"v": {"op": "<", "value": 10}}))
    index.add(sub("le", "t.a", where={"v": {"op": "<=", "value": 10}}))
    index.add(sub("gt", "t.a", where={"v": {"op": ">", "value": 10}}))
    index.add(sub("ge", "t.a", where={"v": {"op": ">=", "value": 10}}))
    assert [s.consumer_id for s in index.candidates("t.a", {"v": 10})] == ["le", "ge"]
    assert [s.consumer_id for s in index.candidates("t.a", {"v": 9})] == ["lt", "le"]
    assert [s.consumer_id for s in index.candidates("t.a", {"v": 11})] == ["gt", "ge"]


def test_where_key_non_numeric_event_value_is_not_range_pruned():
    """A non-numeric event value is left to the full clause: the index
    must not guess the outcome of exotic cross-type comparisons."""
    index = SubscriptionIndex(indexed_keys=("v",))
    index.add(sub("gt", "t.a", where={"v": {"op": ">", "value": 5}}))
    got = [s.consumer_id for s in index.candidates("t.a", {"v": "hot"})]
    assert got == ["gt"]
    # ...and the clause itself rejects it (TypeError -> no match).
    event = Event(
        event_id="e", type="t.a", source="s", partition="p0", time=0.0,
        data={"v": "hot"},
    )
    assert not got or not index.get("gt").matches(event)


def test_where_key_range_tables_cleaned_on_remove_and_readd():
    index = SubscriptionIndex(indexed_keys=("v",))
    index.add(sub("c", "t.a", where={"v": {"op": ">", "value": 5}}))
    index.add(sub("c", "t.a", where={"v": {"op": "<", "value": 5}}))  # re-add flips
    assert [s.consumer_id for s in index.candidates("t.a", {"v": 3})] == ["c"]
    assert index.candidates("t.a", {"v": 7}) == []
    index.remove("c")
    assert index._range["v"] == {}
    assert index.candidates("t.a", {"v": 3}) == []


_BOUNDS = st.one_of(
    st.integers(min_value=-5, max_value=105),
    st.floats(min_value=-5.0, max_value=105.0, allow_nan=False),
    st.sampled_from([float("inf"), float("-inf"), float("nan")]),
)

_CLAUSES = st.one_of(
    st.none(),
    st.tuples(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]), _BOUNDS),
    st.tuples(st.just("<"), st.just("zz")),  # non-numeric bound: unprunable
)

_EVENT_VALUES = st.one_of(
    st.none(),  # field absent
    st.integers(min_value=-10, max_value=110),
    st.floats(allow_nan=True, allow_infinity=True),
    st.text(max_size=2),
)


@settings(max_examples=120, deadline=None)
@given(
    clauses=st.lists(_CLAUSES, min_size=1, max_size=8),
    values=st.lists(_EVENT_VALUES, min_size=1, max_size=12),
)
def test_range_pruning_exactly_equivalent_to_scan(clauses, values):
    """Hypothesis: for any mix of range/equality clauses on an indexed
    numeric key and any stream of event values (numeric, missing, NaN,
    infinite, non-numeric), pruning never changes the delivered set or
    order relative to the naive full scan."""
    linear: dict[str, Subscription] = {}
    index = SubscriptionIndex(indexed_keys=("v",))
    for i, clause in enumerate(clauses):
        where = {} if clause is None else {"v": {"op": clause[0], "value": clause[1]}}
        s = Subscription(f"c{i}", "n", "p", types=("ev.*",), where=where)
        linear[f"c{i}"] = s
        index.add(s)
    for step, value in enumerate(values):
        data = {} if value is None else {"v": value}
        event = Event(
            event_id=f"e{step}", type="ev.tick", source="s", partition="p0",
            time=float(step), data=data,
        )
        via_scan = [s.consumer_id for s in linear.values() if s.matches(event)]
        via_index = [
            s.consumer_id
            for s in index.candidates(event.type, event.data)
            if s.matches(event)
        ]
        assert via_index == via_scan, f"divergence on {data!r}"


def test_where_key_missing_field_prunes_every_pinned_sub():
    index = SubscriptionIndex()
    index.add(sub("pinned", "t.a", where={"node": "n1"}))
    index.add(sub("free", "t.a"))
    assert [s.consumer_id for s in index.candidates("t.a", {"k": 1})] == ["free"]
    # An unhashable event value cannot equal any hashable pinned value.
    assert [s.consumer_id for s in index.candidates("t.a", {"node": ["n1"]})] == ["free"]


def test_where_key_buckets_cleaned_on_remove_and_readd():
    index = SubscriptionIndex()
    index.add(sub("c", "t.a", where={"node": "n1"}))
    index.add(sub("c", "t.a", where={"node": "n2"}))  # re-add moves buckets
    assert index.candidates("t.a", {"node": "n1"}) == []
    assert [s.consumer_id for s in index.candidates("t.a", {"node": "n2"})] == ["c"]
    index.remove("c")
    assert index._eq["node"] == {}
    assert index._eq_constrained["node"] == set()


def test_where_key_index_equivalent_to_scan_on_random_stream():
    """Property check with ``data`` in play: random node-keyed clauses
    (plain, operator, unhashable) never change the delivered set or order
    relative to the naive full scan."""
    rng = random.Random(17)
    nodes = ["n0", "n1", "n2", "n3"]

    def rand_where():
        roll = rng.random()
        if roll < 0.25:
            return {}
        if roll < 0.5:
            return {"node": rng.choice(nodes)}
        if roll < 0.65:
            return {"node": {"op": "==", "value": rng.choice(nodes)}}
        if roll < 0.75:
            return {"node": {"op": "!=", "value": rng.choice(nodes)}}
        if roll < 0.85:
            return {"node": {"op": "in", "value": rng.sample(nodes, 2)}}
        if roll < 0.95:
            return {"k": rng.randint(0, 2)}
        return {"node": rng.sample(nodes, 1)}  # unhashable equality value

    linear: dict[str, Subscription] = {}
    index = SubscriptionIndex()
    for step in range(800):
        roll = rng.random()
        if roll < 0.25:
            cid = f"c{rng.randint(0, 30)}"
            s = Subscription(cid, "n", "p", types=("ev.*",), where=rand_where())
            linear[cid] = s
            index.add(s)
        elif roll < 0.35:
            cid = f"c{rng.randint(0, 30)}"
            linear.pop(cid, None)
            index.remove(cid)
        else:
            data = {}
            if rng.random() < 0.85:
                data["node"] = rng.choice(nodes + [["list"]])  # sometimes unhashable
            if rng.random() < 0.5:
                data["k"] = rng.randint(0, 2)
            event = Event(
                event_id=f"e{step}", type="ev.tick", source="s", partition="p0",
                time=float(step), data=data,
            )
            via_scan = [s.consumer_id for s in linear.values() if s.matches(event)]
            via_index = [
                s.consumer_id
                for s in index.candidates(event.type, event.data)
                if s.matches(event)
            ]
            assert via_index == via_scan, f"divergence at step {step} on {data!r}"


# -- checkpoint debounce -----------------------------------------------------


def es_daemon(kernel, partition="p0"):
    return kernel.live_daemon("es", kernel.placement[("es", partition)])


def test_subscribe_burst_coalesces_into_one_checkpoint(kernel, sim):
    es = es_daemon(kernel)
    before = es.ckpt_writes
    sigs = [
        kernel.client("p0c0").subscribe(f"burst{i}", "sink", types=(ev.NODE_FAILURE,))
        for i in range(8)
    ]
    for sig in sigs:
        assert drive(sim, sig)["ok"]
    sim.run(until=sim.now + 1.0)  # debounce window + save round trip
    assert es.ckpt_writes == before + 1
    assert sim.trace.counter("es.ckpt_writes") >= 1


def test_spaced_changes_each_get_their_own_checkpoint(kernel, sim):
    es = es_daemon(kernel)
    before = es.ckpt_writes
    for i in range(3):
        assert drive(sim, kernel.client("p0c0").subscribe(f"slow{i}", "sink"))["ok"]
        sim.run(until=sim.now + 1.0)  # well past the debounce window
    assert es.ckpt_writes == before + 3


def test_debounced_checkpoint_still_recovers_registry(kernel, sim, injector):
    """The debounce must not lose the registry: after a burst and an ES
    restart, the recovered daemon still knows every subscriber."""
    es = es_daemon(kernel)
    for i in range(5):
        assert drive(sim, kernel.client("p0c0").subscribe(f"r{i}", "sink"))["ok"]
    sim.run(until=sim.now + 1.0)  # flush lands in the checkpoint store
    injector.kill_process(es.node_id, "es")
    sim.run(until=sim.now + 40.0)  # GSD diagnoses and restarts the daemon
    fresh = es_daemon(kernel)
    assert fresh is not es and fresh.alive
    recovered = {s.consumer_id for s in fresh.subscriptions()}
    assert {f"r{i}" for i in range(5)} <= recovered
