"""SubscriptionIndex equivalence with the linear scan, and the debounced
subscription checkpoint."""

import random

from repro.kernel import ports
from repro.kernel.events import types as ev
from repro.kernel.events.filters import Subscription, SubscriptionIndex
from repro.kernel.events.types import Event
from tests.kernel.conftest import drive

# -- index unit behaviour ----------------------------------------------------


def sub(cid, *types, where=None):
    return Subscription(cid, "n", "p", types=tuple(types), where=where or {})


def test_exact_type_lookup():
    index = SubscriptionIndex()
    index.add(sub("a", "node.failure"))
    index.add(sub("b", "node.recovery"))
    assert [s.consumer_id for s in index.candidates("node.failure")] == ["a"]


def test_family_wildcard_lookup():
    index = SubscriptionIndex()
    index.add(sub("fam", "node.*"))
    index.add(sub("other", "app.*"))
    assert [s.consumer_id for s in index.candidates("node.failure")] == ["fam"]
    # "node.*" must NOT match the bare type "node" (startswith "node.").
    assert index.candidates("node") == []


def test_catch_all_sees_everything():
    index = SubscriptionIndex()
    index.add(sub("all"))
    assert [s.consumer_id for s in index.candidates("anything.at.all")] == ["all"]
    assert [s.consumer_id for s in index.candidates("dotless")] == ["all"]


def test_candidates_preserve_registration_order():
    index = SubscriptionIndex()
    index.add(sub("late", "x.y"))
    index.add(sub("all"))
    index.add(sub("fam", "x.*"))
    got = [s.consumer_id for s in index.candidates("x.y")]
    assert got == ["late", "all", "fam"]


def test_readd_keeps_original_slot():
    index = SubscriptionIndex()
    index.add(sub("first", "t.a"))
    index.add(sub("second", "t.a"))
    index.add(sub("first", "t.a", where={"k": 1}))  # refresh, same slot
    got = [s.consumer_id for s in index.candidates("t.a")]
    assert got == ["first", "second"]
    assert index.get("first").where == {"k": 1}


def test_remove_cleans_every_table():
    index = SubscriptionIndex()
    index.add(sub("c", "a.b", "x.*"))
    index.add(sub("all"))
    assert index.remove("c").consumer_id == "c"
    assert index.remove("c") is None
    assert "c" not in index
    assert [s.consumer_id for s in index.candidates("a.b")] == ["all"]
    assert [s.consumer_id for s in index.candidates("x.q")] == ["all"]
    assert len(index) == 1


def test_index_equivalent_to_linear_scan_on_random_stream():
    """Property check: for a random registry and random events, the index
    delivers to exactly the same consumers in exactly the same order as
    the old full scan with Subscription.matches."""
    rng = random.Random(7)
    atoms = ["node", "app", "job", "net", "failure", "recovery", "started", "exited"]

    def rand_type():
        return ".".join(rng.choice(atoms) for _ in range(rng.randint(1, 3)))

    def rand_pattern():
        t = rand_type()
        return t + ".*" if rng.random() < 0.4 else t

    linear: dict[str, Subscription] = {}
    index = SubscriptionIndex()
    for step in range(600):
        roll = rng.random()
        if roll < 0.25:
            cid = f"c{rng.randint(0, 40)}"
            patterns = tuple(rand_pattern() for _ in range(rng.randint(0, 3)))
            where = {"k": rng.randint(0, 2)} if rng.random() < 0.3 else {}
            s = Subscription(cid, "n", "p", types=patterns, where=where)
            linear[cid] = s  # dict re-add keeps the original scan position
            index.add(s)
        elif roll < 0.35:
            cid = f"c{rng.randint(0, 40)}"
            linear.pop(cid, None)
            index.remove(cid)
        else:
            event = Event(
                event_id=f"e{step}", type=rand_type(), source="s", partition="p0",
                time=float(step), data={"k": rng.randint(0, 2)},
            )
            via_scan = [s.consumer_id for s in linear.values() if s.matches(event)]
            via_index = [
                s.consumer_id for s in index.candidates(event.type) if s.matches(event)
            ]
            assert via_index == via_scan, f"divergence at step {step} on {event.type!r}"


# -- checkpoint debounce -----------------------------------------------------


def es_daemon(kernel, partition="p0"):
    return kernel.live_daemon("es", kernel.placement[("es", partition)])


def test_subscribe_burst_coalesces_into_one_checkpoint(kernel, sim):
    es = es_daemon(kernel)
    before = es.ckpt_writes
    sigs = [
        kernel.client("p0c0").subscribe(f"burst{i}", "sink", types=(ev.NODE_FAILURE,))
        for i in range(8)
    ]
    for sig in sigs:
        assert drive(sim, sig)["ok"]
    sim.run(until=sim.now + 1.0)  # debounce window + save round trip
    assert es.ckpt_writes == before + 1
    assert sim.trace.counter("es.ckpt_writes") >= 1


def test_spaced_changes_each_get_their_own_checkpoint(kernel, sim):
    es = es_daemon(kernel)
    before = es.ckpt_writes
    for i in range(3):
        assert drive(sim, kernel.client("p0c0").subscribe(f"slow{i}", "sink"))["ok"]
        sim.run(until=sim.now + 1.0)  # well past the debounce window
    assert es.ckpt_writes == before + 3


def test_debounced_checkpoint_still_recovers_registry(kernel, sim, injector):
    """The debounce must not lose the registry: after a burst and an ES
    restart, the recovered daemon still knows every subscriber."""
    es = es_daemon(kernel)
    for i in range(5):
        assert drive(sim, kernel.client("p0c0").subscribe(f"r{i}", "sink"))["ok"]
    sim.run(until=sim.now + 1.0)  # flush lands in the checkpoint store
    injector.kill_process(es.node_id, "es")
    sim.run(until=sim.now + 40.0)  # GSD diagnoses and restarts the daemon
    fresh = es_daemon(kernel)
    assert fresh is not es and fresh.alive
    recovered = {s.consumer_id for s in fresh.subscriptions()}
    assert {f"r{i}" for i in range(5)} <= recovered
