"""Long-haul stability: hours of virtual time, bounded memory, no drift."""

import pytest

from repro.cluster import Cluster, ClusterSpec, FaultInjector
from repro.kernel import KernelTimings, PhoenixKernel
from repro.sim import Simulator
from repro.userenv.monitoring import install_gridview

from tests.sim.engine_equivalence import assert_equivalent


def test_two_virtual_hours_with_periodic_faults():
    """The paper testbed runs 2 h of virtual time with a fault every ~7
    minutes; the kernel stays healthy, trace memory stays bounded, and
    background traffic stays flat (no leak-like growth)."""
    sim = Simulator(seed=6, trace_capacity=300)
    cluster = Cluster(sim, ClusterSpec.build(partitions=4, computes=4))
    kernel = PhoenixKernel(cluster, timings=KernelTimings(heartbeat_interval=30.0))
    kernel.boot()
    gv = install_gridview(kernel, refresh_interval=60.0)
    injector = FaultInjector(cluster)

    # One WD kill + one NIC flap every ~420 s, rotating targets.
    computes = cluster.compute_nodes()
    for i, at in enumerate(range(400, 7000, 420)):
        node = computes[i % len(computes)]
        injector.at(float(at), "kill_process", node, "wd")
        injector.at(float(at + 60), "fail_nic", node, "data")
        injector.at(float(at + 200), "restore_nic", node, "data")

    # First hour: record the traffic rate.
    sim.run(until=3600.0)
    msgs_h1 = sum(sim.trace.counter(f"net.{n}.msgs") for n in cluster.networks)
    sim.run(until=7200.0)
    msgs_h2 = sum(sim.trace.counter(f"net.{n}.msgs") for n in cluster.networks) - msgs_h1

    # Memory bounded by the trace capacity (which genuinely wrapped).
    assert len(sim.trace) <= 300
    assert sim.trace.total_marked > 300

    # Traffic flat hour over hour (±10%): nothing leaks or retries forever.
    assert abs(msgs_h2 - msgs_h1) < 0.1 * msgs_h1

    # Every injected fault healed: all WDs alive, all NICs up.
    for node in cluster.nodes:
        assert cluster.hostos(node).process_alive("wd"), node
        assert cluster.networks["data"].link_up(node), node

    # Monitoring stayed live to the end.
    assert gv.latest is not None
    assert gv.latest.time > 7000.0
    assert gv.latest.nodes_reporting == cluster.size

    # Meta-group untouched by the compute-side churn.
    view = kernel.gsd("p0").metagroup.view
    assert view.view_id == 1
    assert kernel.gsd("p0").metagroup.is_leader


@pytest.mark.slow
def test_simulated_week_fast_forward_zero_drift():
    """A simulated *week* of chaos under fast-forward.

    The first hour runs on exact and fast-forward twins through the same
    boundary-injected fault schedule; the twins must show zero drift in
    records, counters, and histograms.  The fast-forward world then
    continues alone through seven days of rotating chaos — process
    kills, crash/reboot cycles, NIC flaps, gray degradation — which is
    only affordable because the healthy gaps between faults are
    batch-accounted rather than executed.
    """
    WEEK = 604800.0

    def boot_world(fast_forward):
        sim = Simulator(seed=7, trace_capacity=256, fast_forward=fast_forward)
        cluster = Cluster(sim, ClusterSpec.build(partitions=2, computes=3))
        kernel = PhoenixKernel(
            cluster,
            timings=KernelTimings(heartbeat_interval=60.0, detector_interval=30.0),
        )
        kernel.boot()
        return sim, cluster, kernel

    def first_hour(sim, cluster):
        inj = FaultInjector(cluster)
        computes = cluster.compute_nodes()
        schedule = [
            (600.5, lambda: inj.kill_process(computes[0], "wd")),
            (1200.3, lambda: inj.fail_nic(computes[1], "data")),
            (1800.7, lambda: inj.restore_nic(computes[1], "data")),
            (2400.2, lambda: inj.degrade_link(computes[2], "mgmt", loss=0.25, latency_mult=4.0)),
            (3000.9, lambda: inj.restore_link(computes[2], "mgmt")),
        ]
        for when, action in schedule:
            sim.run(until=when)
            action()
        sim.run(until=3600.0)

    exact_sim, exact_cluster, _ = boot_world(False)
    ff_sim, ff_cluster, ff_kernel = boot_world(True)
    first_hour(exact_sim, exact_cluster)
    first_hour(ff_sim, ff_cluster)
    assert_equivalent(exact_sim, ff_sim, context="week: exact one-hour prefix")
    assert ff_sim.ff_skipped > 0
    assert ff_sim.events_executed < exact_sim.events_executed

    # Continue only the fast-forward twin.  Chaos rotates an 8-phase diet
    # over the compute nodes, injected at window boundaries; the final two
    # hours stay quiet so every fault heals before the end-state audit.
    inj = FaultInjector(ff_cluster)
    computes = ff_cluster.compute_nodes()

    def chaos_step(i):
        node = computes[(i // 8) % len(computes)]
        phase = i % 8
        if phase == 0:
            if ff_cluster.node(node).up and ff_cluster.hostos(node).process_alive("detector"):
                inj.kill_process(node, "detector")
        elif phase == 1:
            if ff_cluster.node(node).up:
                inj.crash_node(node)
        elif phase == 2:
            if not ff_cluster.node(node).up:
                # Reboot and restart the node-local daemons, construction-
                # tool style (node death is recovery-0 for the WD: nobody
                # migrates or remotely restarts a dead node's daemons).
                inj.boot_node(node)
                for svc in ("ppm", "detector", "wd"):
                    ff_kernel.start_service(svc, node)
        elif phase == 3:
            if ff_cluster.networks["data"].link_up(node):
                inj.fail_nic(node, "data")
        elif phase == 4:
            if not ff_cluster.networks["data"].link_up(node):
                inj.restore_nic(node, "data")
        elif phase == 5:
            inj.degrade_link(node, "ipc", loss=0.2, latency_mult=3.0, direction="out")
        elif phase == 6:
            inj.restore_link(node, "ipc")
        # phase 7: rest window — pure steady state.

    i = 0
    while ff_sim.now < WEEK:
        ff_sim.run(until=min(ff_sim.now + 1800.5, WEEK))
        if ff_sim.now < WEEK - 7200.0:
            chaos_step(i)
            i += 1

    # The week was overwhelmingly batch-accounted, not executed.
    assert ff_sim.now == WEEK
    assert ff_sim.ff_skipped > 50_000
    assert ff_sim.events_executed < ff_sim.ff_skipped

    # Batch accounting kept the aggregate books: beats and exports land
    # near their healthy-uptime budgets (10 nodes, minus GSD-host beats
    # and crash downtime).
    assert ff_sim.trace.counter("wd.beats") > 60_000
    assert ff_sim.trace.counter("detector.exports") > 150_000

    # Every fault healed: nodes up, daemons alive, NICs restored.
    for node in ff_cluster.nodes:
        assert ff_cluster.node(node).up, node
        assert ff_cluster.hostos(node).process_alive("wd"), node
        assert ff_cluster.networks["data"].link_up(node), node

    # Trace memory stayed bounded across the week.
    assert len(ff_sim.trace) <= 256
