"""Long-haul stability: hours of virtual time, bounded memory, no drift."""

from repro.cluster import Cluster, ClusterSpec, FaultInjector
from repro.kernel import KernelTimings, PhoenixKernel
from repro.sim import Simulator
from repro.userenv.monitoring import install_gridview


def test_two_virtual_hours_with_periodic_faults():
    """The paper testbed runs 2 h of virtual time with a fault every ~7
    minutes; the kernel stays healthy, trace memory stays bounded, and
    background traffic stays flat (no leak-like growth)."""
    sim = Simulator(seed=6, trace_capacity=300)
    cluster = Cluster(sim, ClusterSpec.build(partitions=4, computes=4))
    kernel = PhoenixKernel(cluster, timings=KernelTimings(heartbeat_interval=30.0))
    kernel.boot()
    gv = install_gridview(kernel, refresh_interval=60.0)
    injector = FaultInjector(cluster)

    # One WD kill + one NIC flap every ~420 s, rotating targets.
    computes = cluster.compute_nodes()
    for i, at in enumerate(range(400, 7000, 420)):
        node = computes[i % len(computes)]
        injector.at(float(at), "kill_process", node, "wd")
        injector.at(float(at + 60), "fail_nic", node, "data")
        injector.at(float(at + 200), "restore_nic", node, "data")

    # First hour: record the traffic rate.
    sim.run(until=3600.0)
    msgs_h1 = sum(sim.trace.counter(f"net.{n}.msgs") for n in cluster.networks)
    sim.run(until=7200.0)
    msgs_h2 = sum(sim.trace.counter(f"net.{n}.msgs") for n in cluster.networks) - msgs_h1

    # Memory bounded by the trace capacity (which genuinely wrapped).
    assert len(sim.trace) <= 300
    assert sim.trace.total_marked > 300

    # Traffic flat hour over hour (±10%): nothing leaks or retries forever.
    assert abs(msgs_h2 - msgs_h1) < 0.1 * msgs_h1

    # Every injected fault healed: all WDs alive, all NICs up.
    for node in cluster.nodes:
        assert cluster.hostos(node).process_alive("wd"), node
        assert cluster.networks["data"].link_up(node), node

    # Monitoring stayed live to the end.
    assert gv.latest is not None
    assert gv.latest.time > 7000.0
    assert gv.latest.nodes_reporting == cluster.size

    # Meta-group untouched by the compute-side churn.
    view = kernel.gsd("p0").metagroup.view
    assert view.view_id == 1
    assert kernel.gsd("p0").metagroup.is_leader
