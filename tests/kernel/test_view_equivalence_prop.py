"""Property: a registered view equals a from-scratch scan under random churn.

Hypothesis drives a short campaign against a live cluster — compute-node
kills and recoveries, job-row lifecycle, and bulletin failovers on the
view owner's partition mid-stream — then requires the materialized view
to converge back to exact (float-tolerant) agreement with the full-scan
reference, and a time-travel read to stay self-consistent.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ClusterSpec, FaultInjector
from repro.kernel import KernelTimings, PhoenixKernel, ports
from repro.kernel.bulletin.query import Agg, Query
from repro.sim import Simulator
from tests.kernel.conftest import drive
from tests.kernel.test_bulletin_views import rows_close
from tests.kernel.test_views_integration import _equivalent

NODES_VIEW = Query(
    table="nodes",
    group_by=("state",),
    aggs=(
        Agg("count", "*", "n"),
        Agg("sum", "cpu_pct", "cpu"),
        Agg("min", "cpu_pct", "lo"),
        Agg("max", "cpu_pct", "hi"),
    ),
)
JOBS_VIEW = Query(table="jobs", group_by=("phase",), aggs=(Agg("count", "*", "n"),))

_ACTIONS = ("kill", "recover", "failover", "job", "idle")


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    seed=st.integers(0, 2**16),
    actions=st.lists(st.sampled_from(_ACTIONS), min_size=2, max_size=5),
)
def test_view_matches_fresh_scan_under_randomized_churn(seed, actions):
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, ClusterSpec.build(partitions=3, computes=2))
    timings = KernelTimings(heartbeat_interval=5.0, deadline_grace=0.1)
    kernel = PhoenixKernel(cluster, timings=timings)
    kernel.boot()
    sim.run(until=10.0)
    injector = FaultInjector(cluster)
    client = kernel.client(cluster.partitions[0].server)
    for name, query in (("prop.nodes", NODES_VIEW), ("prop.jobs", JOBS_VIEW)):
        reply = drive(sim, client.register_view(name, query, partition="p1"), max_time=60.0)
        assert reply and reply.get("ok"), reply

    downed: list[str] = []
    job_seq = 0
    for action in actions:
        if action == "kill":
            candidates = [n for n in ("p2c0", "p2c1", "p1c0")
                          if cluster.node(n).up and n not in downed]
            if candidates:
                injector.crash_node(candidates[0])
                downed.append(candidates[0])
        elif action == "recover" and downed:
            node = downed.pop(0)
            injector.boot_node(node)
            for svc in ("ppm", "detector", "wd"):
                if not cluster.hostos(node).process_alive(svc):
                    kernel.start_service(svc, node)
        elif action == "failover":
            owner_node = kernel.placement[("db", "p1")]
            if cluster.node(owner_node).up:
                injector.crash_node(owner_node)
        elif action == "job":
            job_seq += 1
            db_node = kernel.placement[("db", "p0")]
            drive(sim, client._transport.rpc(
                client.node_id, db_node, ports.DB, ports.DB_PUT,
                {"table": "apps", "key": f"job{job_seq}",
                 "row": {"app": "prop", "phase": ("running", "done")[job_seq % 2]}},
                timeout=5.0,
            ))
        sim.run(until=sim.now + 12.0)

    sim.run(until=sim.now + 60.0)  # settle: failover, rebuild, expiry
    _equivalent(sim, client, "prop.nodes", NODES_VIEW, attempts=20)
    _equivalent(sim, client, "prop.jobs", JOBS_VIEW, attempts=20)

    # Time-travel round trip: the recent past must replay from checkpoints
    # with per-partition versions and never raise.
    past = drive(sim, client.exec_query(Query(table="jobs", as_of=sim.now - 1.0)))
    assert past is not None and "rows" in past and "versions" in past
