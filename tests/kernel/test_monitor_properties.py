"""Property tests for the heartbeat monitor's core guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.group.monitor import HeartbeatMonitor
from repro.sim import Simulator
from repro.userenv.monitoring import render_performance
from repro.userenv.monitoring.gridview import ClusterSnapshot

NETS = ["a", "b", "c"]
INTERVAL = 10.0
GRACE = 0.5


def build_monitor():
    sim = Simulator(seed=0)
    events = []
    mon = HeartbeatMonitor(
        sim, NETS, interval=INTERVAL, grace=GRACE,
        on_nic_miss=lambda s, n: events.append(("nic_miss", n)),
        on_nic_restore=lambda s, n: events.append(("nic_restore", n)),
        on_full_miss=lambda s: events.append(("full_miss", s)),
        on_return=lambda s: events.append(("return", s)),
    )
    return sim, mon, events


@given(st.lists(st.floats(min_value=0.1, max_value=INTERVAL - 0.1), min_size=1, max_size=20))
@settings(max_examples=40, deadline=None)
def test_property_no_false_positives_when_gaps_below_interval(gaps):
    """Beats on all fabrics with every gap < interval: total silence."""
    sim, mon, events = build_monitor()
    mon.expect("n1")
    t = 0.0
    for gap in gaps:
        t += gap
        for net in NETS:
            sim.schedule_at(t, mon.beat, "n1", net)
    sim.run(until=t + INTERVAL - 0.1)
    assert events == []


@given(
    st.lists(st.floats(min_value=0.1, max_value=INTERVAL - 0.1), min_size=0, max_size=8),
    st.floats(min_value=INTERVAL + GRACE + 0.01, max_value=5 * INTERVAL),
)
@settings(max_examples=40, deadline=None)
def test_property_one_full_miss_after_silence(gaps, silence):
    """Any all-fabric silence beyond interval+grace: exactly one full_miss."""
    sim, mon, events = build_monitor()
    mon.expect("n1")
    t = 0.0
    for gap in gaps:
        t += gap
        for net in NETS:
            sim.schedule_at(t, mon.beat, "n1", net)
    sim.run(until=t + silence)
    full = [e for e in events if e[0] == "full_miss"]
    assert full == [("full_miss", "n1")]
    assert all(e[0] == "full_miss" for e in events)  # no nic-level noise first


@given(st.sampled_from(NETS), st.integers(min_value=1, max_value=4))
@settings(max_examples=20, deadline=None)
def test_property_single_quiet_fabric_exactly_one_miss(quiet_net, rounds):
    """One fabric quiet while others beat: exactly one nic_miss for it,
    regardless of how many rounds pass."""
    sim, mon, events = build_monitor()
    mon.expect("n1")
    t = 0.0
    for _ in range(rounds + 2):
        t += INTERVAL - 0.5
        for net in NETS:
            if net != quiet_net:
                sim.schedule_at(t, mon.beat, "n1", net)
    sim.run(until=t + 1.0)
    assert events == [("nic_miss", quiet_net)]


# -- render_performance smoke (placed here to reuse the imports) ---------------


def test_render_performance_board():
    snaps = [
        ClusterSnapshot(time=float(i * 30), node_count=8, nodes_reporting=8, nodes_down=0,
                        avg_cpu_pct=5.0 + i, avg_mem_pct=18.0, avg_swap_pct=0.5)
        for i in range(6)
    ]
    board = render_performance(snaps)
    assert "cpu" in board and "mem" in board and "swap" in board
    assert "%/min" in board
    assert any(ch in board for ch in "▁▂▃▄▅▆▇█")
