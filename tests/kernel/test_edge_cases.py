"""Edge-case batch: late RPC replies, loopback, queued-cancel, ES outage
semantics, multi-app isolation."""

import pytest

from repro.kernel import ports
from tests.kernel.conftest import drive


def test_late_rpc_reply_after_timeout_is_dropped(kernel, sim):
    """A reply arriving after the caller timed out must not blow up or
    fire the signal twice."""
    def slow_handler(msg):
        # Manual late reply: 2 s after a 0.5 s timeout.
        kernel.sim.schedule(2.0, lambda: kernel.cluster.transport.send(
            "p0s0", msg.src_node, f"_rpc.{msg.rpc_id}", "slow.reply", {"late": True}))
        return None

    kernel.cluster.transport.bind("p0s0", "slow", slow_handler)
    sig = kernel.cluster.transport.rpc("p0c0", "p0s0", "slow", "slow.q", {}, timeout=0.5)
    sim.run(until=sim.now + 5.0)
    assert sig.fired and sig.value is None  # timed out; late reply ignored
    assert sim.trace.records("net.unbound", port=sig.name.replace("rpc.", "_rpc."))


def test_loopback_rpc(kernel, sim):
    """A node can RPC itself (used by co-located services)."""
    kernel.cluster.transport.bind("p0c0", "echo", lambda m: {"me": m.src_node})
    reply = drive(sim, kernel.cluster.transport.rpc("p0c0", "p0c0", "echo", "q", {}))
    assert reply == {"me": "p0c0"}


def test_cancel_queued_job(kernel, sim):
    from repro.userenv.pws import PoolSpec, install_pws
    from repro.userenv.pws.server import CANCEL, STATUS, SUBMIT

    install_pws(kernel, [PoolSpec("q", kernel.cluster.compute_nodes())])
    sim.run(until=sim.now + 2.0)

    def rpc(mtype, payload):
        return drive(sim, kernel.cluster.transport.rpc(
            "p0c0", kernel.placement[("pws", "p0")], "pws", mtype, payload, timeout=5.0))

    rpc(SUBMIT, {"user": "f", "nodes": 9, "cpus_per_node": 4, "duration": 100.0, "pool": "q"})
    queued = rpc(SUBMIT, {"user": "w", "nodes": 9, "cpus_per_node": 4, "duration": 10.0,
                          "pool": "q"})
    sim.run(until=sim.now + 2.0)
    assert rpc(STATUS, {"job_id": queued["job_id"]})["job"]["state"] == "queued"
    assert rpc(CANCEL, {"job_id": queued["job_id"]})["ok"]
    assert rpc(STATUS, {"job_id": queued["job_id"]})["job"]["state"] == "cancelled"
    # Cancelling again fails cleanly.
    assert rpc(CANCEL, {"job_id": queued["job_id"]})["ok"] is False


def test_events_published_during_es_outage_are_lost_but_flow_resumes(kernel, sim, injector):
    """Documented at-most-once semantics: no buffering at suppliers."""
    from tests.kernel.test_events import publish, subscribe_collector

    inbox = subscribe_collector(kernel, sim, "p0c0", "c", types=("custom.z",))
    sim.run(until=sim.now + 1.0)
    es_node = kernel.placement[("es", "p0")]
    injector.kill_process(es_node, "es")
    # Publish into the void (fire-and-forget supplier, dead ES).
    kernel.client("p0c1").publish("custom.z", {"phase": "lost"})
    sim.run(until=sim.now + 40.0)  # GSD restarts ES, state from checkpoint
    publish(kernel, sim, "p0c1", "custom.z", {"phase": "after"})
    sim.run(until=sim.now + 1.0)
    assert [e.data["phase"] for e in inbox] == ["after"]


def test_two_business_apps_are_isolated(kernel, sim):
    from repro.userenv.business import BizAppSpec, TierSpec, install_business_runtime

    runtime = install_business_runtime(kernel, partition_id="p1")
    sim.run(until=sim.now + 2.0)
    runtime.deploy(BizAppSpec(name="a", tiers=(TierSpec("web", 2, cpus=1),)))
    runtime.deploy(BizAppSpec(name="b", tiers=(TierSpec("web", 2, cpus=1),)))
    sim.run(until=sim.now + 2.0)
    runtime.scale("a", "web", 4)
    sim.run(until=sim.now + 2.0)
    assert runtime.app_status("a")["tiers"]["web"] == 4
    assert runtime.app_status("b")["tiers"]["web"] == 2
    # Kill one of b's replicas: a is untouched.
    replica = next(r for r in runtime.apps["b"].replicas if r.healthy)
    kernel.cluster.hostos(replica.node).kill_process(f"job.{replica.job_id}")
    sim.run(until=sim.now + 5.0)
    assert runtime.app_status("b")["tiers"]["web"] == 2  # healed
    assert runtime.app_status("a")["tiers"]["web"] == 4


def test_bulletin_delete_rpc(kernel, sim):
    db = kernel.placement[("db", "p0")]
    t = kernel.cluster.transport
    drive(sim, t.rpc("p0c0", db, ports.DB, ports.DB_PUT,
                     {"table": "t", "key": "k", "row": {"v": 1}}))
    reply = drive(sim, t.rpc("p0c0", db, ports.DB, ports.DB_DELETE, {"table": "t", "key": "k"}))
    assert reply == {"ok": True}
    reply = drive(sim, t.rpc("p0c0", db, ports.DB, ports.DB_DELETE, {"table": "t", "key": "k"}))
    assert reply == {"ok": False}
