"""Configuration + security services."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SecurityError
from repro.kernel.events import types as ev
from repro.kernel.security import acl, crypto, tokens
from tests.kernel.conftest import drive
from tests.kernel.test_events import subscribe_collector

# -- configuration service ----------------------------------------------------


def test_static_config_derived_from_spec(kernel, sim):
    client = kernel.client("p1c0")
    reply = drive(sim, client.config_get("cluster.node_count"))
    assert reply == {"found": True, "value": 12}
    reply = drive(sim, client.config_get("partition.p1.server"))
    assert reply["value"] == "p1s0"
    reply = drive(sim, client.config_get("node.p0c0.cpus"))
    assert reply["value"] == 4


def test_config_get_unknown_key(kernel, sim):
    reply = drive(sim, kernel.client("p0c0").config_get("no.such.key"))
    assert reply == {"found": False}


def test_config_set_and_list(kernel, sim):
    client = kernel.client("p0c0")
    reply = drive(sim, client.config_set("userenv.pws.pools", ["batch", "interactive"]))
    assert reply["ok"] and reply["old"] is None
    reply = drive(sim, client.config_get("userenv.pws.pools"))
    assert reply["value"] == ["batch", "interactive"]
    reply = drive(sim, client.config_list("userenv."))
    assert reply["keys"] == ["userenv.pws.pools"]


def test_config_set_publishes_change_event(kernel, sim):
    inbox = subscribe_collector(kernel, sim, "p0c0", "cfgwatch", types=(ev.CONFIG_CHANGED,))
    drive(sim, kernel.client("p0c0").config_set("x.y", 1))
    sim.run(until=sim.now + 0.5)
    assert len(inbox) == 1
    assert inbox[0].data == {"key": "x.y", "old": None, "new": 1}


def test_introspection_reports_problems(kernel, sim, injector):
    reply = drive(sim, kernel.client("p0c0").introspect())
    assert reply["report"]["healthy"]
    assert reply["report"]["node_count"] == 12
    injector.crash_node("p2c1")
    injector.fail_nic("p1c0", "data")
    reply = drive(sim, kernel.client("p0c0").introspect())
    report = reply["report"]
    assert not report["healthy"]
    kinds = {(p["kind"], p.get("node")) for p in report["problems"]}
    assert ("node_down", "p2c1") in kinds
    assert ("nic_down", "p1c0") in kinds
    assert "p2c1" in report["nodes_down"]


# -- token unit tests --------------------------------------------------------


def test_token_roundtrip():
    token = tokens.issue_token(b"s", "alice", ["admin"], now=10.0, ttl=100.0)
    user, roles = tokens.verify_token(b"s", token, now=50.0)
    assert user == "alice" and roles == ["admin"]


def test_token_expiry():
    token = tokens.issue_token(b"s", "alice", [], now=0.0, ttl=10.0)
    with pytest.raises(SecurityError, match="expired"):
        tokens.verify_token(b"s", token, now=10.1)


def test_token_wrong_secret_rejected():
    token = tokens.issue_token(b"s1", "alice", [], now=0.0, ttl=10.0)
    with pytest.raises(SecurityError, match="signature"):
        tokens.verify_token(b"s2", token, now=1.0)


def test_token_tamper_rejected():
    token = tokens.issue_token(b"s", "alice", ["scientific"], now=0.0, ttl=10.0)
    forged = token.replace("scientific", "admin", 1)
    with pytest.raises(SecurityError):
        tokens.verify_token(b"s", forged, now=1.0)


def test_token_validation():
    with pytest.raises(SecurityError):
        tokens.issue_token(b"s", "a|b", [], now=0.0, ttl=1.0)
    with pytest.raises(SecurityError):
        tokens.issue_token(b"s", "a", ["r|1"], now=0.0, ttl=1.0)
    with pytest.raises(SecurityError):
        tokens.issue_token(b"s", "a", [], now=0.0, ttl=0.0)
    with pytest.raises(SecurityError):
        tokens.verify_token(b"s", "garbage", now=0.0)


@given(st.text(alphabet="abcdefgh", min_size=1), st.floats(1.0, 1e6), st.floats(0.0, 1e6))
def test_property_token_roundtrip_any_user(user, ttl, now):
    token = tokens.issue_token(b"secret", user, ["scientific", "admin"], now=now, ttl=ttl)
    got_user, got_roles = tokens.verify_token(b"secret", token, now=now + ttl / 2)
    assert got_user == user and got_roles == ["scientific", "admin"]


# -- ACL unit tests ---------------------------------------------------------


def test_default_policy_roles():
    policy = acl.AccessPolicy()
    assert policy.authorized("job.submit", [acl.ROLE_SCIENTIFIC])
    assert not policy.authorized("job.submit", [acl.ROLE_BUSINESS])
    assert policy.authorized("cluster.deploy", [acl.ROLE_CONSTRUCTOR])
    assert not policy.authorized("unknown.action", [acl.ROLE_ADMIN])
    assert not policy.authorized("job.submit", [])


def test_policy_allow_extends():
    policy = acl.AccessPolicy()
    policy.allow("job.submit", acl.ROLE_BUSINESS)
    assert policy.authorized("job.submit", [acl.ROLE_BUSINESS])
    with pytest.raises(SecurityError):
        policy.allow("job.submit", "made-up-role")


# -- crypto unit tests --------------------------------------------------------


def test_crypto_roundtrip():
    ct = crypto.encrypt(b"key", b"nonce", b"hello world")
    assert ct != b"hello world"
    assert crypto.decrypt(b"key", b"nonce", ct) == b"hello world"


def test_crypto_wrong_key_garbles():
    ct = crypto.encrypt(b"key", b"nonce", b"hello world")
    assert crypto.decrypt(b"other", b"nonce", ct) != b"hello world"


def test_crypto_validation():
    with pytest.raises(SecurityError):
        crypto.encrypt(b"", b"n", b"x")
    with pytest.raises(SecurityError):
        crypto.encrypt(b"k", b"", b"x")


@given(st.binary(max_size=300), st.binary(min_size=1, max_size=16), st.binary(min_size=1, max_size=16))
def test_property_crypto_involution(plaintext, key, nonce):
    assert crypto.decrypt(key, nonce, crypto.encrypt(key, nonce, plaintext)) == plaintext


# -- security daemon integration ----------------------------------------------


def test_authentication_flow(kernel, sim):
    sec = kernel.security_service()
    sec.add_user("alice", "pw", [acl.ROLE_SCIENTIFIC])
    client = kernel.client("p1c1")
    reply = drive(sim, client.authenticate("alice", "pw"))
    assert reply["ok"] and reply["roles"] == [acl.ROLE_SCIENTIFIC]
    token = reply["token"]
    reply = drive(sim, client.authorize(token, "job.submit"))
    assert reply == {"ok": True, "user": "alice"}
    reply = drive(sim, client.authorize(token, "cluster.deploy"))
    assert reply["ok"] is False


def test_bad_credentials_rejected(kernel, sim):
    sec = kernel.security_service()
    sec.add_user("alice", "pw", [])
    reply = drive(sim, kernel.client("p0c0").authenticate("alice", "wrong"))
    assert reply["ok"] is False
    reply = drive(sim, kernel.client("p0c0").authenticate("ghost", "pw"))
    assert reply["ok"] is False
    assert sim.trace.counter("sec.auth_failures") == 2


def test_user_management(kernel):
    sec = kernel.security_service()
    sec.add_user("bob", "x", [acl.ROLE_ADMIN])
    with pytest.raises(SecurityError):
        sec.add_user("bob", "y", [])
    assert sec.users() == ["bob"]
    sec.remove_user("bob")
    with pytest.raises(SecurityError):
        sec.remove_user("bob")
