"""Checkpoint service: store semantics, replication, anti-entropy pull."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CheckpointError
from repro.kernel import ports
from repro.kernel.checkpoint.store import CheckpointStore
from tests.kernel.conftest import drive

# -- store unit tests --------------------------------------------------------


def test_store_save_and_load_roundtrip():
    store = CheckpointStore()
    v = store.save("k", {"a": 1}, now=5.0)
    assert v == 1
    entry = store.load("k")
    assert entry.data == {"a": 1}
    assert entry.version == 1
    assert entry.saved_at == 5.0


def test_store_versions_increment():
    store = CheckpointStore()
    assert store.save("k", {"a": 1}, now=0.0) == 1
    assert store.save("k", {"a": 2}, now=1.0) == 2
    assert store.load("k").data == {"a": 2}


def test_store_snapshots_are_isolated():
    store = CheckpointStore()
    data = {"nested": {"x": 1}}
    store.save("k", data, now=0.0)
    data["nested"]["x"] = 999
    assert store.load("k").data == {"nested": {"x": 1}}
    loaded = store.load("k")
    loaded.data["nested"]["x"] = -1
    assert store.load("k").data == {"nested": {"x": 1}}


def test_store_stale_explicit_version_rejected():
    store = CheckpointStore()
    store.save("k", {"a": 1}, now=0.0, version=5)
    with pytest.raises(CheckpointError):
        store.save("k", {"a": 0}, now=1.0, version=3)
    assert store.save("k", {"a": 2}, now=1.0, version=5) == 5


def test_store_empty_key_rejected():
    with pytest.raises(CheckpointError):
        CheckpointStore().save("", {}, now=0.0)


def test_store_delete_and_missing_load():
    store = CheckpointStore()
    store.save("k", {}, now=0.0)
    assert store.delete("k") is True
    assert store.delete("k") is False
    assert store.load("k") is None


def test_store_dump_absorb_merges_newer_versions():
    a = CheckpointStore()
    b = CheckpointStore()
    a.save("x", {"v": "a"}, now=0.0)
    a.save("y", {"v": "a"}, now=0.0)
    b.save("y", {"v": "b2"}, now=1.0, version=2)
    updated = b.absorb(a.dump(), now=2.0)
    assert updated == 1  # only "x"; "y" is newer locally
    assert b.load("y").data == {"v": "b2"}
    assert b.load("x").data == {"v": "a"}


@given(
    st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(0, 100)),
        min_size=1,
        max_size=30,
    )
)
def test_property_store_last_write_wins_and_version_monotone(writes):
    store = CheckpointStore()
    latest: dict[str, int] = {}
    versions: dict[str, int] = {}
    for key, value in writes:
        v = store.save(key, {"value": value}, now=0.0)
        assert v == versions.get(key, 0) + 1
        versions[key] = v
        latest[key] = value
    for key, value in latest.items():
        assert store.load(key).data == {"value": value}


# -- daemon integration -----------------------------------------------------


def test_daemon_save_load_delete_over_rpc(kernel, sim):
    t = kernel.cluster.transport
    ckpt_node = kernel.placement[("ckpt", "p0")]
    reply = drive(sim, t.rpc("p0c0", ckpt_node, ports.CKPT, ports.CKPT_SAVE,
                             {"key": "svc.state", "data": {"n": 42}}))
    assert reply == {"ok": True, "version": 1}
    reply = drive(sim, t.rpc("p0c0", ckpt_node, ports.CKPT, ports.CKPT_LOAD, {"key": "svc.state"}))
    assert reply["found"] and reply["data"] == {"n": 42}
    reply = drive(sim, t.rpc("p0c0", ckpt_node, ports.CKPT, ports.CKPT_DELETE, {"key": "svc.state"}))
    assert reply == {"ok": True}
    reply = drive(sim, t.rpc("p0c0", ckpt_node, ports.CKPT, ports.CKPT_LOAD, {"key": "svc.state"}))
    assert reply == {"found": False}


def test_saves_replicate_to_backup_node(kernel, sim):
    t = kernel.cluster.transport
    ckpt_node = kernel.placement[("ckpt", "p0")]
    drive(sim, t.rpc("p0c0", ckpt_node, ports.CKPT, ports.CKPT_SAVE,
                     {"key": "k", "data": {"v": 7}}))
    sim.run(until=sim.now + 1.0)  # let async replication land
    replica = kernel.live_daemon("ckpt.replica", kernel.placement[("ckpt.replica", "p0")])
    assert replica.store.load("k").data == {"v": 7}


def test_restarted_primary_pulls_from_replica(kernel, sim, injector):
    t = kernel.cluster.transport
    ckpt_node = kernel.placement[("ckpt", "p0")]
    drive(sim, t.rpc("p0c0", ckpt_node, ports.CKPT, ports.CKPT_SAVE,
                     {"key": "k", "data": {"v": 1}}))
    sim.run(until=sim.now + 1.0)
    injector.kill_process(ckpt_node, "ckpt")
    # Restart on the *backup* node (simulating migration) and verify the
    # fresh instance syncs the replica's contents.
    backup = kernel.placement[("ckpt.replica", "p0")]
    fresh = kernel.start_service("ckpt", backup)
    sim.run(until=sim.now + 1.0)
    assert fresh.store.load("k").data == {"v": 1}
    assert sim.trace.records("ckpt.synced")


def test_concurrent_saves_commit_in_arrival_order(kernel, sim):
    """Back-to-back saves of one key must land last-writer-wins by
    *arrival*, even though a bigger (slower-to-commit) stale payload pays
    a longer storage delay than the small fresh one behind it."""
    t = kernel.cluster.transport
    ckpt_node = kernel.placement[("ckpt", "p0")]
    big_stale = {"state": "old", "pad": "x" * 4096}
    t.send("p0c0", ckpt_node, ports.CKPT, ports.CKPT_SAVE,
           {"key": "svc.race", "data": big_stale})
    t.send("p0c0", ckpt_node, ports.CKPT, ports.CKPT_SAVE,
           {"key": "svc.race", "data": {"state": "new"}})
    sim.run(until=sim.now + 5.0)
    reply = drive(sim, t.rpc("p0c0", ckpt_node, ports.CKPT, ports.CKPT_LOAD,
                             {"key": "svc.race"}))
    assert reply["found"] and reply["data"] == {"state": "new"}
    assert reply["version"] == 2
