"""Chaos testing: random fault/repair sequences, then convergence checks.

A deterministic chaos driver injects a random mix of daemon kills, node
crashes (with later repairs), and NIC failures (with later restores) for
several hundred simulated seconds.  After a quiet settling window, the
kernel must have healed: every partition's service group alive, one
consistent meta-group view containing every partition, exactly one
leader, and every up node marked up.
"""

import pytest

from repro.cluster import Cluster, ClusterSpec, FaultInjector
from repro.kernel import KernelTimings, PhoenixKernel
from repro.sim import Simulator
from repro.userenv.construction import ConstructionTool

INTERVAL = 10.0
CHAOS_TIME = 500.0
SETTLE_TIME = 12 * INTERVAL

#: Daemons the chaos driver may kill (anything the kernel self-heals).
KILLABLE = ("wd", "detector", "es", "db", "ckpt", "gsd")


def chaos_driver(sim, cluster, kernel, injector, tool, rng):
    """Coroutine: random faults with scheduled repairs."""
    while sim.now < CHAOS_TIME:
        yield float(rng.uniform(20.0, 60.0))
        if sim.now >= CHAOS_TIME:
            return  # don't inject after the repair sweep's cutoff
        action = rng.choice(["kill_daemon", "crash_node", "fail_nic"])
        node_id = str(rng.choice(sorted(cluster.nodes)))
        node = cluster.node(node_id)
        if action == "kill_daemon":
            hostos = cluster.hostos(node_id)
            candidates = [s for s in KILLABLE if hostos.process_alive(s)]
            if node.up and candidates:
                injector.kill_process(node_id, str(rng.choice(candidates)), case="chaos")
        elif action == "crash_node":
            if node.up:
                injector.crash_node(node_id, case="chaos")
                repair_after = float(rng.uniform(60.0, 120.0))
                sim.schedule(repair_after, _safe_repair, tool, node_id)
        elif action == "fail_nic":
            network = str(rng.choice(sorted(cluster.networks)))
            if node.up and cluster.networks[network].link_up(node_id):
                injector.fail_nic(node_id, network, case="chaos")
                sim.schedule(float(rng.uniform(40.0, 90.0)), _safe_restore, injector, node_id, network)


def _safe_repair(tool, node_id):
    try:
        tool.recover_node(node_id)
    except Exception:
        pass  # node may be mid-recovery; the next sweep catches it


def _safe_restore(injector, node_id, network):
    if not injector.cluster.networks[network].link_up(node_id):
        injector.restore_nic(node_id, network)


@pytest.mark.parametrize("seed", [1, 2, 3, 4])
def test_kernel_survives_chaos_and_converges(seed):
    sim = Simulator(seed=seed, trace_capacity=50_000)
    tool = ConstructionTool(sim)
    kernel = tool.build(
        ClusterSpec.build(partitions=4, computes=3),
        timings=KernelTimings(heartbeat_interval=INTERVAL),
    )
    cluster = kernel.cluster
    injector = FaultInjector(cluster)
    rng = sim.rngs.stream("chaos")
    sim.spawn(chaos_driver(sim, cluster, kernel, injector, tool, rng), name="chaos")

    # Chaos phase (any unhandled protocol exception fails the test here).
    sim.run(until=CHAOS_TIME)
    assert injector.injected, "chaos driver injected nothing — test is vacuous"

    # Repair any still-down nodes, then let everything settle.
    for node_id in sorted(cluster.nodes):
        if not cluster.node(node_id).up:
            tool.recover_node(node_id)
    # Restore any NICs the driver never got to.
    for network, net in cluster.networks.items():
        for node_id in sorted(cluster.nodes):
            if not net.link_up(node_id):
                injector.restore_nic(node_id, network)
    sim.run(until=sim.now + SETTLE_TIME)

    # Invariant 1: every partition's GSD + service group is alive.
    for part in cluster.partitions:
        pid = part.partition_id
        for svc in ("gsd", "es", "db", "ckpt"):
            daemon = kernel.live_daemon(svc, kernel.placement.get((svc, pid)))
            assert daemon is not None and daemon.alive, f"{svc}@{pid} dead after chaos"

    # Invariant 2: one consistent view containing every partition.
    views = [kernel.gsd(p.partition_id).metagroup.view for p in cluster.partitions]
    assert len({v.view_id for v in views}) == 1, [v.view_id for v in views]
    partitions_in_view = {part for part, _ in views[0].members}
    assert partitions_in_view == {p.partition_id for p in cluster.partitions}

    # Invariant 3: exactly one leader, and placement agrees.
    leaders = [
        p.partition_id for p in cluster.partitions
        if kernel.gsd(p.partition_id).metagroup.is_leader
    ]
    assert len(leaders) == 1
    assert kernel.placement[("metagroup", "leader")] == views[0].leader()[1]

    # Invariant 4: every node is up and (eventually) seen as up.
    for part in cluster.partitions:
        gsd = kernel.gsd(part.partition_id)
        for node_id in part.all_nodes:
            assert cluster.node(node_id).up
            if node_id != gsd.node_id:
                assert gsd.node_state.get(node_id, "up") == "up", (
                    f"{node_id} still marked down by {gsd.node_id}"
                )

    # Invariant 5: every node runs its node services again.
    for node_id in cluster.nodes:
        hostos = cluster.hostos(node_id)
        for svc in ("wd", "ppm", "detector"):
            assert hostos.process_alive(svc), f"{svc} missing on {node_id}"
