"""Data bulletin: store queries + federation single access point (Figure 5)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import KernelError
from repro.kernel import ports
from repro.kernel.bulletin.store import BulletinStore
from tests.kernel.conftest import drive

# -- store unit tests --------------------------------------------------------


def test_store_put_get_query():
    store = BulletinStore()
    store.put("t", "k1", {"cpu": 10}, now=1.0, partition="p0")
    store.put("t", "k2", {"cpu": 20}, now=2.0, partition="p0")
    row = store.get("t", "k1")
    assert row["cpu"] == 10
    assert row["_key"] == "k1" and row["_partition"] == "p0" and row["_updated_at"] == 1.0
    assert [r["_key"] for r in store.query("t")] == ["k1", "k2"]


def test_store_query_where_clause():
    store = BulletinStore()
    store.put("t", "a", {"state": "up"}, now=0, partition="p0")
    store.put("t", "b", {"state": "down"}, now=0, partition="p0")
    assert [r["_key"] for r in store.query("t", {"state": "down"})] == ["b"]
    assert store.query("t", {"state": "nope"}) == []
    assert store.query("missing-table") == []


def test_store_where_distinguishes_missing_field():
    store = BulletinStore()
    store.put("t", "a", {"x": None}, now=0, partition="p0")
    store.put("t", "b", {}, now=0, partition="p0")
    assert [r["_key"] for r in store.query("t", {"x": None})] == ["a"]


def test_store_put_overwrites_by_key():
    store = BulletinStore()
    store.put("t", "a", {"v": 1}, now=0, partition="p0")
    store.put("t", "a", {"v": 2}, now=5, partition="p0")
    assert store.row_count("t") == 1
    assert store.get("t", "a")["v"] == 2
    assert store.get("t", "a")["_updated_at"] == 5


def test_store_rows_are_copies():
    store = BulletinStore()
    store.put("t", "a", {"v": {"deep": 1}}, now=0, partition="p0")
    store.query("t")[0]["v"]["deep"] = 99
    assert store.get("t", "a")["v"]["deep"] == 1


def test_store_delete_and_expire():
    store = BulletinStore()
    store.put("t", "a", {}, now=0, partition="p0")
    store.put("t", "b", {}, now=10, partition="p0")
    assert store.delete("t", "a") is True
    assert store.delete("t", "a") is False
    assert store.expire("t", max_age=5.0, now=20.0) == 1
    assert store.row_count("t") == 0


def test_store_validation():
    with pytest.raises(KernelError):
        BulletinStore().put("", "k", {}, now=0, partition="p0")
    with pytest.raises(KernelError):
        BulletinStore().put("t", "", {}, now=0, partition="p0")


@given(
    st.lists(
        st.tuples(st.sampled_from("abc"), st.sampled_from(["up", "down"])),
        min_size=1, max_size=40,
    )
)
def test_property_query_equals_filtered_latest_state(writes):
    store = BulletinStore()
    latest = {}
    for i, (key, state) in enumerate(writes):
        store.put("t", key, {"state": state}, now=float(i), partition="p0")
        latest[key] = state
    for state in ("up", "down"):
        expected = sorted(k for k, s in latest.items() if s == state)
        got = [r["_key"] for r in store.query("t", {"state": state})]
        assert got == expected


# -- federation integration -----------------------------------------------


def put_row(kernel, sim, partition, key, row):
    node = kernel.placement[("db", partition)]
    src = kernel.cluster.partition(partition).computes[0]
    drive(sim, kernel.cluster.transport.rpc(
        src, node, ports.DB, ports.DB_PUT, {"table": "custom", "key": key, "row": row}))


def test_global_query_merges_all_partitions(kernel, sim):
    for pid in ("p0", "p1", "p2"):
        put_row(kernel, sim, pid, f"row-{pid}", {"origin": pid})
    client = kernel.client("p2c1")
    reply = drive(sim, client.query_bulletin("custom", partition="p0"))
    assert reply is not None
    assert reply["partitions_missing"] == []
    assert sorted(r["_partition"] for r in reply["rows"]) == ["p0", "p1", "p2"]


def test_any_instance_is_an_access_point(kernel, sim):
    put_row(kernel, sim, "p1", "only-row", {"origin": "p1"})
    for entry in ("p0", "p1", "p2"):
        reply = drive(sim, kernel.client("p0c0").query_bulletin("custom", partition=entry))
        assert [r["_key"] for r in reply["rows"]] == ["only-row"], entry


def test_dead_instance_hides_only_its_partition(kernel, sim, injector):
    for pid in ("p0", "p1", "p2"):
        put_row(kernel, sim, pid, f"row-{pid}", {"origin": pid})
    injector.kill_process(kernel.placement[("db", "p1")], "db")
    reply = drive(sim, kernel.client("p0c0").query_bulletin("custom", partition="p0"), max_time=20.0)
    assert reply["partitions_missing"] == ["p1"]
    assert sorted(r["_partition"] for r in reply["rows"]) == ["p0", "p2"]


def test_local_scope_query_returns_own_rows_only(kernel, sim):
    for pid in ("p0", "p1"):
        put_row(kernel, sim, pid, f"row-{pid}", {"origin": pid})
    node = kernel.placement[("db", "p0")]
    reply = drive(sim, kernel.cluster.transport.rpc(
        "p0c0", node, ports.DB, ports.DB_QUERY,
        {"table": "custom", "where": None, "scope": "local"}))
    assert [r["_partition"] for r in reply["rows"]] == ["p0"]


def test_global_query_with_where_clause(kernel, sim):
    put_row(kernel, sim, "p0", "a", {"state": "up"})
    put_row(kernel, sim, "p1", "b", {"state": "down"})
    reply = drive(sim, kernel.client("p0c0").query_bulletin("custom", where={"state": "down"}))
    assert [r["_key"] for r in reply["rows"]] == ["b"]
