"""Checkpoint storage I/O cost model."""

import pytest

from repro.kernel import KernelTimings, ports
from tests.kernel.conftest import drive


def test_write_cost_formula():
    t = KernelTimings()
    assert t.ckpt_write_cost(0) == pytest.approx(0.001)
    assert t.ckpt_write_cost(50_000_000) == pytest.approx(1.001)


def test_small_save_acks_in_milliseconds(kernel, sim):
    ckpt_node = kernel.placement[("ckpt", "p0")]
    t0 = sim.now
    reply = drive(sim, kernel.cluster.transport.rpc(
        "p0c0", ckpt_node, ports.CKPT, ports.CKPT_SAVE, {"key": "k", "data": {"v": 1}}))
    assert reply == {"ok": True, "version": 1}
    assert sim.now - t0 < 0.01


def test_large_save_pays_bandwidth(kernel, sim):
    ckpt_node = kernel.placement[("ckpt", "p0")]
    big = {"blob": "x" * 5_000_000}  # ~5 MB -> ~0.1 s at 50 MB/s
    t0 = sim.now
    reply = drive(sim, kernel.cluster.transport.rpc(
        "p0c0", ckpt_node, ports.CKPT, ports.CKPT_SAVE,
        {"key": "big", "data": big}, timeout=2.0))
    assert reply["ok"]
    elapsed = sim.now - t0
    assert 0.09 < elapsed < 0.2


def test_concurrent_saves_keep_version_order(kernel, sim):
    ckpt_node = kernel.placement[("ckpt", "p0")]
    t = kernel.cluster.transport
    sigs = [
        t.rpc("p0c0", ckpt_node, ports.CKPT, ports.CKPT_SAVE,
              {"key": "k", "data": {"n": i}})
        for i in range(3)
    ]
    for sig in sigs:
        drive(sim, sig)
    versions = [sig.value["version"] for sig in sigs]
    # Independent datagrams may reorder in flight; versions are unique and
    # dense, and the stored value is whichever commit got version 3.
    assert sorted(versions) == [1, 2, 3]
    last_writer = versions.index(3)
    reply = drive(sim, t.rpc("p0c0", ckpt_node, ports.CKPT, ports.CKPT_LOAD, {"key": "k"}))
    assert reply["version"] == 3
    assert reply["data"] == {"n": last_writer}
