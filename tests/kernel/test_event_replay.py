"""Late-subscriber event replay + job priority ordering."""

from repro.kernel.events.types import Event
from tests.kernel.conftest import drive
from tests.kernel.test_events import publish


def subscribe_with_replay(kernel, sim, node, consumer_id, types=(), replay=0):
    inbox = []
    port = f"sink.{consumer_id}"
    kernel.cluster.transport.bind(
        node, port,
        lambda msg: inbox.append(
            (Event.from_payload(msg.payload["event"]), msg.payload.get("replayed", False))
        ),
    )
    reply = drive(sim, kernel.client(node).subscribe(consumer_id, port, types=types,
                                                     replay=replay))
    assert reply and reply["ok"]
    return inbox


def test_late_subscriber_catches_up(kernel, sim):
    for i in range(5):
        publish(kernel, sim, "p0c1", "custom.tick", {"i": i})
    sim.run(until=sim.now + 0.5)
    inbox = subscribe_with_replay(kernel, sim, "p0c0", "late", types=("custom.tick",), replay=3)
    sim.run(until=sim.now + 0.5)
    assert [(e.data["i"], replayed) for e, replayed in inbox] == [
        (2, True), (3, True), (4, True),
    ]
    # Live events keep flowing afterwards, unmarked.
    publish(kernel, sim, "p0c1", "custom.tick", {"i": 99})
    sim.run(until=sim.now + 0.5)
    assert inbox[-1][0].data["i"] == 99 and inbox[-1][1] is False


def test_replay_respects_filters(kernel, sim):
    publish(kernel, sim, "p0c1", "custom.a", {"v": 1})
    publish(kernel, sim, "p0c1", "custom.b", {"v": 2})
    sim.run(until=sim.now + 0.5)
    inbox = subscribe_with_replay(kernel, sim, "p0c0", "filtered", types=("custom.b",), replay=10)
    sim.run(until=sim.now + 0.5)
    assert [e.type for e, _ in inbox] == ["custom.b"]


def test_no_replay_by_default(kernel, sim):
    publish(kernel, sim, "p0c1", "custom.x", {})
    sim.run(until=sim.now + 0.5)
    inbox = subscribe_with_replay(kernel, sim, "p0c0", "fresh", types=("custom.x",))
    sim.run(until=sim.now + 0.5)
    assert inbox == []


def test_replay_covers_forwarded_events_too(kernel, sim):
    """Events published at another partition reach this instance's history
    via federation forwarding."""
    publish(kernel, sim, "p2c0", "custom.far", {"v": 7}, partition="p2")
    sim.run(until=sim.now + 0.5)
    inbox = subscribe_with_replay(kernel, sim, "p0c0", "far", types=("custom.far",), replay=5)
    sim.run(until=sim.now + 0.5)
    assert len(inbox) == 1 and inbox[0][0].data["v"] == 7


# -- job priorities (scheduler ordering) --------------------------------------


def test_priority_orders_fifo_band():
    from repro.userenv.pws.jobs import JobRecord, JobSpec
    from repro.userenv.pws.scheduler import order_queue

    jobs = [
        JobRecord(spec=JobSpec("low", "u", 1, 1, 5.0, priority=0), submitted_at=1.0),
        JobRecord(spec=JobSpec("high", "u", 1, 1, 5.0, priority=10), submitted_at=2.0),
        JobRecord(spec=JobSpec("mid", "u", 1, 1, 5.0, priority=5), submitted_at=0.5),
    ]
    assert [j.spec.job_id for j in order_queue("fifo", jobs)] == ["high", "mid", "low"]


def test_priority_roundtrips_payload():
    from repro.userenv.pws.jobs import JobSpec

    spec = JobSpec("j", "u", 1, 1, 5.0, priority=7)
    assert JobSpec.from_payload(spec.to_payload()).priority == 7


def test_high_priority_job_dispatches_first(kernel, sim):
    from repro.userenv.pws import PoolSpec, install_pws
    from repro.userenv.pws.server import STATUS, SUBMIT
    from tests.kernel.conftest import drive as _drive

    install_pws(kernel, [PoolSpec("q", kernel.cluster.compute_nodes(), lendable=False)])
    sim.run(until=sim.now + 2.0)

    def rpc(mtype, payload):
        sig = kernel.cluster.transport.rpc(
            "p0c0", kernel.placement[("pws", "p0")], "pws", mtype, payload, timeout=5.0)
        return _drive(sim, sig)

    # Fill the pool, then queue a low- and a high-priority job.
    filler = rpc(SUBMIT, {"user": "f", "nodes": 9, "cpus_per_node": 4, "duration": 20.0,
                          "pool": "q"})
    low = rpc(SUBMIT, {"user": "l", "nodes": 9, "cpus_per_node": 4, "duration": 10.0,
                       "pool": "q", "priority": 0})
    high = rpc(SUBMIT, {"user": "h", "nodes": 9, "cpus_per_node": 4, "duration": 10.0,
                        "pool": "q", "priority": 9})
    sim.run(until=sim.now + 25.0)  # filler done -> one job starts
    assert rpc(STATUS, {"job_id": high["job_id"]})["job"]["state"] == "running"
    assert rpc(STATUS, {"job_id": low["job_id"]})["job"]["state"] == "queued"
