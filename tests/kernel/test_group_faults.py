"""Integration tests for the Tables 1–3 fault-tolerance mechanics.

Uses a short heartbeat interval (5 s) so the suite stays fast; the
paper-interval (30 s) latencies are covered by the benchmark harness.
"""

import pytest

from repro.cluster import FaultInjector


@pytest.fixture()
def rig(fast_kernel, sim):
    injector = FaultInjector(fast_kernel.cluster)
    sim.run(until=10.001)  # just past the t=10 heartbeat round
    return fast_kernel, sim, injector


def marks(sim, category, component, t0):
    return [r for r in sim.trace.records(category, component=component) if r.time > t0]


# -- Table 1: watch daemon --------------------------------------------------


def test_wd_process_failure_detected_diagnosed_restarted(rig):
    kernel, sim, injector = rig
    t0 = sim.now
    injector.kill_process("p1c0", "wd")
    sim.run(until=t0 + 20.0)
    det = marks(sim, "failure.detected", "wd", t0)
    diag = marks(sim, "failure.diagnosed", "wd", t0)
    rec = marks(sim, "failure.recovered", "wd", t0)
    assert det and diag and rec
    assert det[0]["node"] == "p1c0"
    assert diag[0]["kind"] == "process"
    # Detection ~ one heartbeat interval; diagnosis ~ one probe window;
    # recovery ~ WD spawn time.
    assert det[0].time - t0 == pytest.approx(5.1, abs=0.3)
    assert diag[0].time - det[0].time == pytest.approx(0.29, abs=0.02)
    assert rec[0].time - diag[0].time == pytest.approx(0.1, abs=0.05)
    # The WD is actually running again and resumes beating.
    assert kernel.cluster.hostos("p1c0").process_alive("wd")
    beats_before = sim.trace.counter("wd.beats")
    sim.run(until=sim.now + 6.0)
    assert sim.trace.counter("wd.beats") > beats_before


def test_wd_node_failure_recovery_is_zero(rig):
    kernel, sim, injector = rig
    t0 = sim.now
    injector.crash_node("p1c0")
    sim.run(until=t0 + 20.0)
    diag = marks(sim, "failure.diagnosed", "wd", t0)
    rec = marks(sim, "failure.recovered", "wd", t0)
    assert diag[0]["kind"] == "node"
    # ~7 probe windows for compute-node confirmation.
    det = marks(sim, "failure.detected", "wd", t0)
    assert diag[0].time - det[0].time == pytest.approx(0.29 * 7, abs=0.05)
    # "migrating WD means nothing": recovery is immediate.
    assert rec[0].time == diag[0].time
    assert kernel.gsd("p1").node_state["p1c0"] == "down"


def test_wd_nic_failure_diagnosed_in_microseconds(rig):
    kernel, sim, injector = rig
    t0 = sim.now
    injector.fail_nic("p1c0", "data")
    sim.run(until=t0 + 10.0)
    det = marks(sim, "failure.detected", "wd", t0)
    diag = marks(sim, "failure.diagnosed", "wd", t0)
    rec = marks(sim, "failure.recovered", "wd", t0)
    assert det[0]["network"] == "data"
    assert diag[0]["kind"] == "network"
    assert diag[0].time - det[0].time == pytest.approx(348e-6, rel=0.01)
    assert rec[0].time == diag[0].time  # three redundant networks


def test_wd_nic_restore_publishes_recovery(rig):
    kernel, sim, injector = rig
    injector.fail_nic("p1c0", "data")
    sim.run(until=sim.now + 10.0)
    injector.restore_nic("p1c0", "data")
    sim.run(until=sim.now + 10.0)
    assert sim.trace.records("network.restored", component="wd", node="p1c0")


def test_node_reboot_detected_as_recovery(rig):
    kernel, sim, injector = rig
    injector.crash_node("p1c0")
    sim.run(until=sim.now + 20.0)
    assert kernel.gsd("p1").node_state["p1c0"] == "down"
    # Boot the node and restart its daemons (construction-tool style).
    injector.boot_node("p1c0")
    for svc in ("ppm", "detector", "wd"):
        kernel.start_service(svc, "p1c0")
    sim.run(until=sim.now + 12.0)
    assert kernel.gsd("p1").node_state["p1c0"] == "up"
    assert sim.trace.records("node.returned", node="p1c0")


# -- Table 2: group service daemon ------------------------------------------


def test_gsd_process_failure_restarted_in_place(rig):
    kernel, sim, injector = rig
    t0 = sim.now
    injector.kill_process("p1s0", "gsd")
    sim.run(until=t0 + 30.0)
    det = marks(sim, "failure.detected", "gsd", t0)
    diag = marks(sim, "failure.diagnosed", "gsd", t0)
    rec = marks(sim, "failure.recovered", "gsd", t0)
    assert det[0]["by"] == "p2s0"  # ring successor monitors p1s0
    assert diag[0]["kind"] == "process"
    assert diag[0].time - det[0].time == pytest.approx(0.29, abs=0.02)
    assert rec[0].time - diag[0].time == pytest.approx(2.0, abs=0.1)
    assert kernel.gsd("p1").alive
    assert kernel.placement[("gsd", "p1")] == "p1s0"


def test_gsd_restart_rejoins_ring(rig):
    kernel, sim, injector = rig
    injector.kill_process("p1s0", "gsd")
    sim.run(until=sim.now + 40.0)
    view = kernel.gsd("p0").metagroup.view
    assert ("p1", "p1s0") in view.members
    assert kernel.gsd("p1").metagroup.view.view_id == view.view_id


def test_gsd_node_failure_migrates_to_backup(rig):
    kernel, sim, injector = rig
    t0 = sim.now
    injector.crash_node("p1s0")
    sim.run(until=t0 + 40.0)
    diag = marks(sim, "failure.diagnosed", "gsd", t0)
    rec = marks(sim, "failure.recovered", "gsd", t0)
    assert diag[0]["kind"] == "node"
    assert diag[0].time - marks(sim, "failure.detected", "gsd", t0)[0].time == pytest.approx(
        0.3, abs=0.02)
    assert rec[0]["dst"] == "p1b0"
    assert rec[0].time - diag[0].time == pytest.approx(2.9, abs=0.1)
    assert kernel.placement[("gsd", "p1")] == "p1b0"
    # The whole service group followed (Figure 4 / §4.4).
    for svc in ("es", "db", "ckpt"):
        assert kernel.placement[(svc, "p1")] == "p1b0"
        assert kernel._partition_daemon(svc, "p1").alive
    # Membership reflects the new host.
    view = kernel.gsd("p0").metagroup.view
    assert ("p1", "p1b0") in view.members
    assert not any(n == "p1s0" for _, n in view.members)


def test_gsd_nic_failure_diagnosed_by_ring(rig):
    kernel, sim, injector = rig
    t0 = sim.now
    injector.fail_nic("p1s0", "ipc")
    sim.run(until=t0 + 10.0)
    diag = [r for r in marks(sim, "failure.diagnosed", "gsd", t0) if r.get("network") == "ipc"]
    assert diag and diag[0]["kind"] == "network"
    rec = [r for r in marks(sim, "failure.recovered", "gsd", t0) if r.get("network") == "ipc"]
    assert rec[0].time == diag[0].time


# -- Figure 3: leader / princess takeover ------------------------------------


def test_leader_failure_princess_takes_over(rig):
    kernel, sim, injector = rig
    assert kernel.placement[("metagroup", "leader")] == "p0s0"
    injector.crash_node("p0s0")
    sim.run(until=sim.now + 40.0)
    assert kernel.placement[("metagroup", "leader")] == "p1s0"
    assert kernel.gsd("p1").metagroup.is_leader
    takeovers = sim.trace.records("leader.takeover")
    assert takeovers and takeovers[0]["new"] == "p1s0"
    # p0's GSD migrated to its backup and rejoined as an ordinary member.
    view = kernel.gsd("p1").metagroup.view
    assert view.members[0] == ("p1", "p1s0")
    assert ("p0", "p0b0") in view.members


def test_princess_failure_next_member_becomes_princess(rig):
    kernel, sim, injector = rig
    injector.crash_node("p1s0")  # princess's node
    sim.run(until=sim.now + 40.0)
    view = kernel.gsd("p0").metagroup.view
    assert view.members[0] == ("p0", "p0s0")  # leader unchanged
    assert view.members[1] == ("p2", "p2s0")  # next member is the new princess
    assert kernel.gsd("p2").metagroup.is_princess


def test_views_stay_consistent_across_members(rig):
    kernel, sim, injector = rig
    injector.crash_node("p1s0")
    sim.run(until=sim.now + 60.0)
    view_ids = {
        kernel.gsd(p.partition_id).metagroup.view.view_id
        for p in kernel.cluster.partitions
    }
    assert len(view_ids) == 1


# -- Table 3 / Figure 4: event service group ---------------------------------


def test_es_process_failure_local_restart_with_state(rig):
    kernel, sim, injector = rig
    t0 = sim.now
    injector.kill_process("p1s0", "es")
    sim.run(until=t0 + 15.0)
    det = marks(sim, "failure.detected", "es", t0)
    diag = marks(sim, "failure.diagnosed", "es", t0)
    rec = marks(sim, "failure.recovered", "es", t0)
    assert diag[0]["kind"] == "process"
    assert diag[0].time - det[0].time == pytest.approx(12e-6, rel=0.01)
    assert rec[0].time - diag[0].time == pytest.approx(0.115, abs=0.02)
    assert kernel.es("p1").alive


def test_db_and_ckpt_also_supervised_locally(rig):
    kernel, sim, injector = rig
    t0 = sim.now
    injector.kill_process("p1s0", "db")
    injector.kill_process("p1s0", "ckpt")
    sim.run(until=t0 + 15.0)
    assert marks(sim, "failure.recovered", "db", t0)
    assert marks(sim, "failure.recovered", "ckpt", t0)
    assert kernel.bulletin("p1").alive
    assert kernel.checkpoint("p1").alive


def test_es_node_failure_migrates_with_gsd(rig):
    kernel, sim, injector = rig
    t0 = sim.now
    injector.crash_node("p1s0")
    sim.run(until=t0 + 40.0)
    rec = marks(sim, "failure.recovered", "es", t0)
    assert rec and rec[0]["kind"] == "node" and rec[0]["dst"] == "p1b0"
    assert kernel.placement[("es", "p1")] == "p1b0"


def test_es_local_nic_check(rig):
    kernel, sim, injector = rig
    t0 = sim.now
    injector.fail_nic("p1s0", "mgmt")
    sim.run(until=t0 + 10.0)
    diag = [r for r in marks(sim, "failure.diagnosed", "es", t0) if r.get("network") == "mgmt"]
    assert diag and diag[0]["kind"] == "network"
