import pytest

from repro.cluster import Cluster, ClusterSpec, FaultInjector
from repro.kernel import KernelTimings, PhoenixKernel
from repro.sim import Simulator


def drive(sim, signal, max_time=30.0):
    """Run the simulator until ``signal`` fires (or ``max_time`` passes);
    returns the signal's value (None on timeout)."""
    deadline = sim.now + max_time
    while not signal.fired:
        nxt = sim.peek()
        if nxt is None or nxt > deadline:
            break
        sim.step()
    return signal.value if signal.fired else None


@pytest.fixture()
def sim():
    return Simulator(seed=11)


@pytest.fixture()
def kernel(sim):
    """Booted kernel on 3 partitions x (server + backup + 2 computes)."""
    cluster = Cluster(sim, ClusterSpec.build(partitions=3, computes=2))
    k = PhoenixKernel(cluster)
    k.boot()
    sim.run(until=1.0)  # let startup coroutines settle
    return k


@pytest.fixture()
def cluster(kernel):
    return kernel.cluster


@pytest.fixture()
def injector(cluster):
    return FaultInjector(cluster)


@pytest.fixture()
def fast_kernel(sim):
    """Kernel with a short heartbeat interval for fast failure tests."""
    cluster = Cluster(sim, ClusterSpec.build(partitions=3, computes=2))
    timings = KernelTimings(heartbeat_interval=5.0, deadline_grace=0.1)
    k = PhoenixKernel(cluster, timings=timings)
    k.boot()
    sim.run(until=1.0)
    return k
