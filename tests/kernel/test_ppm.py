"""Parallel process management: jobs, services, tree-fanout commands."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SchedulingError
from repro.kernel.ppm.jobs import TaskSpec
from repro.kernel.ppm.parallel import BRANCHING, split_targets, subtree_timeout
from tests.kernel.conftest import drive

# -- task spec unit tests ----------------------------------------------------


def test_task_spec_validation():
    with pytest.raises(SchedulingError):
        TaskSpec(job_id="", cpus=1, duration=1.0)
    with pytest.raises(SchedulingError):
        TaskSpec(job_id="j", cpus=0, duration=1.0)
    with pytest.raises(SchedulingError):
        TaskSpec(job_id="j", cpus=1, duration=-1.0)


def test_task_spec_payload_roundtrip():
    spec = TaskSpec(job_id="j1", cpus=2, duration=10.0, user="alice")
    assert TaskSpec.from_payload(spec.to_payload()) == spec


# -- fan-out splitting unit tests ---------------------------------------------


def test_split_targets_includes_self():
    run_local, branches = split_targets(["a", "b", "c", "me", "d"], "me")
    assert run_local
    flat = [n for b in branches for n in b]
    assert sorted(flat) == ["a", "b", "c", "d"]


def test_split_targets_without_self():
    run_local, branches = split_targets(["a", "b"], "me")
    assert not run_local
    assert [n for b in branches for n in b] == ["a", "b"]


def test_split_single_target():
    run_local, branches = split_targets(["me"], "me")
    assert run_local and branches == []


def test_split_rejects_duplicates():
    from repro.errors import KernelError

    with pytest.raises(KernelError):
        split_targets(["a", "a"], "me")


@given(st.lists(st.integers(0, 1000), unique=True, min_size=1, max_size=64).map(lambda xs: [f"n{x}" for x in xs]))
def test_property_split_partitions_exactly(targets):
    run_local, branches = split_targets(targets, "coordinator")
    flat = [n for b in branches for n in b]
    assert sorted(flat) == sorted(targets)  # coordinator not in targets here
    assert not run_local
    assert len(branches) <= BRANCHING


def test_subtree_timeout_grows_logarithmically():
    base = 1.0
    assert subtree_timeout(base, 1) == pytest.approx(1.0)
    t64 = subtree_timeout(base, 64)
    t128 = subtree_timeout(base, 128)
    assert t128 - t64 == pytest.approx(base)  # one more level of depth


# -- job lifecycle integration -------------------------------------------------


def test_spawn_job_allocates_cpus_and_completes(kernel, sim):
    client = kernel.client("p0s0")
    reply = drive(sim, client.spawn_job("p0c0", "job-1", cpus=3, duration=50.0))
    assert reply["ok"]
    node = kernel.cluster.node("p0c0")
    assert node.busy_cpus == 3
    assert kernel.cluster.hostos("p0c0").process_alive("job.job-1")
    sim.run(until=sim.now + 60.0)
    assert node.busy_cpus == 0
    assert not kernel.cluster.hostos("p0c0").process_alive("job.job-1")
    ppm = kernel.live_daemon("ppm", "p0c0")
    assert ppm.tasks["job-1"].state.value == "done"


def test_spawn_job_insufficient_cpus(kernel, sim):
    client = kernel.client("p0s0")
    reply = drive(sim, client.spawn_job("p0c0", "big", cpus=5, duration=1.0))
    assert reply["ok"] is False
    assert "insufficient" in reply["error"]
    assert kernel.cluster.node("p0c0").busy_cpus == 0


def test_duplicate_running_job_rejected(kernel, sim):
    client = kernel.client("p0s0")
    assert drive(sim, client.spawn_job("p0c0", "j", cpus=1, duration=100.0))["ok"]
    reply = drive(sim, client.spawn_job("p0c0", "j", cpus=1, duration=100.0))
    assert reply["ok"] is False


def test_kill_job_releases_cpus(kernel, sim):
    client = kernel.client("p0s0")
    drive(sim, client.spawn_job("p0c0", "j", cpus=2, duration=1000.0))
    reply = drive(sim, client.kill_job("p0c0", "j"))
    assert reply["ok"]
    assert kernel.cluster.node("p0c0").busy_cpus == 0
    ppm = kernel.live_daemon("ppm", "p0c0")
    assert ppm.tasks["j"].state.value == "killed"
    reply = drive(sim, client.kill_job("p0c0", "j"))
    assert reply["ok"] is False


def test_node_crash_fails_running_task(kernel, sim, injector):
    client = kernel.client("p0s0")
    drive(sim, client.spawn_job("p0c0", "j", cpus=2, duration=1000.0))
    injector.crash_node("p0c0")
    ppm = kernel.live_daemon("ppm", "p0c0")
    assert ppm.tasks["j"].state.value == "killed"
    assert kernel.cluster.node("p0c0").busy_cpus == 0


def test_task_updates_reach_app_detector_and_events(kernel, sim):
    from repro.kernel.events import types as ev
    from tests.kernel.test_events import subscribe_collector

    inbox = subscribe_collector(kernel, sim, "p0s0", "appwatch",
                                types=(ev.APP_STARTED, ev.APP_EXITED))
    client = kernel.client("p0s0")
    drive(sim, client.spawn_job("p0c0", "j1", cpus=1, duration=5.0))
    sim.run(until=sim.now + 10.0)
    assert [e.type for e in inbox] == [ev.APP_STARTED, ev.APP_EXITED]
    db = kernel.bulletin("p0")
    rows = db.store.query("apps", {"job_id": "j1"})
    assert rows and rows[0]["state"] == "done"


# -- parallel commands -----------------------------------------------------


def test_parallel_noop_reaches_all_targets(kernel, sim):
    targets = [n for n in kernel.cluster.nodes]
    reply = drive(sim, kernel.client("p0s0").parallel_command("noop", targets), max_time=30.0)
    assert reply is not None
    assert reply["errors"] == {}
    assert sorted(reply["results"]) == sorted(targets)


def test_parallel_report_load(kernel, sim):
    drive(sim, kernel.client("p0s0").spawn_job("p0c1", "j", cpus=2, duration=500.0))
    reply = drive(sim, kernel.client("p0s0").parallel_command(
        "report_load", ["p0c0", "p0c1"]), max_time=30.0)
    assert reply["results"]["p0c0"]["cpus_free"] == 4
    assert reply["results"]["p0c1"]["cpus_free"] == 2
    assert reply["results"]["p0c1"]["tasks_running"] == 1


def test_parallel_spawn_and_cleanup(kernel, sim):
    targets = ["p0c0", "p0c1", "p1c0"]
    reply = drive(sim, kernel.client("p0s0").parallel_command(
        "spawn_job", targets, args={"job_id": "par", "cpus": 1, "duration": 900.0}),
        max_time=30.0)
    assert all(r["ok"] for r in reply["results"].values())
    assert all(kernel.cluster.node(n).busy_cpus == 1 for n in targets)
    reply = drive(sim, kernel.client("p0s0").parallel_command("cleanup", targets), max_time=30.0)
    assert sum(r["killed"] for r in reply["results"].values()) == 3
    assert all(kernel.cluster.node(n).busy_cpus == 0 for n in targets)


def test_parallel_command_reports_unreachable_nodes(kernel, sim, injector):
    injector.crash_node("p1c1")
    reply = drive(sim, kernel.client("p0s0").parallel_command(
        "noop", ["p0c0", "p1c1"]), max_time=60.0)
    assert "p0c0" in reply["results"]
    assert reply["errors"].get("p1c1") == "unreachable"


def test_parallel_start_stop_service(kernel, sim, injector):
    injector.kill_process("p0c0", "detector")
    reply = drive(sim, kernel.client("p0s0").parallel_command(
        "start_service", ["p0c0"], args={"service": "detector"}), max_time=30.0)
    assert reply["results"]["p0c0"]["ok"]
    assert kernel.cluster.hostos("p0c0").process_alive("detector")
    reply = drive(sim, kernel.client("p0s0").parallel_command(
        "stop_service", ["p0c0"], args={"service": "detector"}), max_time=30.0)
    assert reply["results"]["p0c0"]["ok"]
    assert not kernel.cluster.hostos("p0c0").process_alive("detector")


def test_unknown_parallel_command(kernel, sim):
    reply = drive(sim, kernel.client("p0s0").parallel_command("frobnicate", ["p0c0"]), max_time=30.0)
    assert reply["results"]["p0c0"]["ok"] is False
