"""Aged-checkpoint spill (DESIGN.md §16 satellite): AS OF beyond the window.

With ``ckpt_spill_aged`` on, versions pruned past ``ckpt_retention_window``
move to a stable spill tier (a slot in the node's :class:`HostOS` stable
store) instead of being dropped, so time travel reaches past the
in-memory window.  Off by default: pruning still drops, byte-identically.
"""

from repro.cluster import Cluster, ClusterSpec, FaultInjector
from repro.cluster.hostos import HostOS
from repro.kernel import KernelTimings, PhoenixKernel, ports
from repro.kernel.bulletin.query import Agg, Query
from repro.kernel.checkpoint.store import CheckpointStore
from repro.sim import Simulator
from tests.kernel.conftest import drive


# -- store-level spill tier ---------------------------------------------------


def test_aged_versions_move_to_spill_and_load_falls_back():
    spill = {}
    store = CheckpointStore(retention_window=5.0, spill=spill)
    store.save("k", {"v": 1}, now=0.0)
    store.save("k", {"v": 2}, now=1.0)
    store.save("k", {"v": 3}, now=20.0)  # horizon 15.0 ages out v1, v2
    assert [b["version"] for b in spill["k"]] == [1, 2]
    # In-memory window misses both reads; the spill tier answers.
    assert store.load("k", version=1).data == {"v": 1}
    assert store.load("k", at_time=1.5).data == {"v": 2}
    assert store.load("k", at_time=-1.0) is None  # before the first save
    assert store.versions("k") == [1, 2, 3]


def test_spill_reads_are_isolated_copies():
    spill = {}
    store = CheckpointStore(retention_window=5.0, spill=spill)
    store.save("k", {"v": {"nested": 1}}, now=0.0)
    store.save("k", {"v": {"nested": 2}}, now=20.0)
    loaded = store.load("k", version=1)
    loaded.data["v"]["nested"] = 99
    assert store.load("k", version=1).data == {"v": {"nested": 1}}


def test_no_spill_keeps_legacy_drop_behavior():
    store = CheckpointStore(retention_window=5.0)
    store.save("k", {"v": 1}, now=0.0)
    store.save("k", {"v": 2}, now=20.0)
    assert store.load("k", version=1) is None
    assert store.versions("k") == [2]


def test_delete_clears_spill_slot():
    spill = {}
    store = CheckpointStore(retention_window=5.0, spill=spill)
    store.save("k", {"v": 1}, now=0.0)
    store.save("k", {"v": 2}, now=20.0)
    assert store.delete("k")
    assert "k" not in spill
    assert store.versions("k") == []


# -- host stable store --------------------------------------------------------


def test_hostos_stable_store_roundtrip_is_isolated():
    sim = Simulator(seed=1)
    cluster = Cluster(sim, ClusterSpec.build(partitions=1, computes=1))
    host = cluster.hostos("p0c0")
    assert isinstance(host, HostOS)
    payload = {"inner": [1, 2]}
    host.stable_write("slot", payload)
    payload["inner"].append(3)  # caller's copy mutating must not leak in
    first = host.stable_read("slot")
    assert first == {"inner": [1, 2]}
    first["inner"].append(4)  # nor the reader's copy leak back
    assert host.stable_read("slot") == {"inner": [1, 2]}
    host.stable_delete("slot")
    assert host.stable_read("slot", default="gone") == "gone"


def test_stable_store_survives_node_crash_and_boot():
    sim = Simulator(seed=1)
    cluster = Cluster(sim, ClusterSpec.build(partitions=2, computes=2))
    kernel = PhoenixKernel(cluster)
    kernel.boot()
    sim.run(until=5.0)
    cluster.hostos("p0c0").stable_write("marker", {"epoch": 7})
    injector = FaultInjector(cluster)
    injector.crash_node("p0c0")
    sim.run(until=sim.now + 5.0)
    injector.boot_node("p0c0")
    sim.run(until=sim.now + 5.0)
    assert cluster.hostos("p0c0").stable_read("marker") == {"epoch": 7}


# -- end to end: AS OF past the retention window ------------------------------


def _time_travel_run(spill_aged: bool):
    """Boot, write two generations of a job row, age the first past the
    retention window, return the AS OF read landing between them."""
    sim = Simulator(seed=11)
    cluster = Cluster(sim, ClusterSpec.build(partitions=3, computes=2))
    timings = KernelTimings(ckpt_retention_window=6.0, ckpt_spill_aged=spill_aged)
    kernel = PhoenixKernel(cluster, timings=timings)
    kernel.boot()
    sim.run(until=10.0)
    client = kernel.client(cluster.partitions[0].server)
    # Base-table checkpointing runs only under view-driven maintenance.
    reply = drive(sim, client.register_view(
        "tt.jobs", Query(table="jobs", aggs=(Agg("count", "*", "n"),)), partition="p0"
    ), max_time=30.0)
    assert reply and reply.get("ok")
    db_node = kernel.placement[("db", "p0")]

    def put(row):
        reply = drive(sim, client._transport.rpc(
            client.node_id, db_node, ports.DB, ports.DB_PUT,
            {"table": "apps", "key": "job1", "row": row}, timeout=5.0,
        ))
        assert reply == {"ok": True}

    put({"app": "linpack", "phase": "running"})
    sim.run(until=sim.now + 2.0)
    t_between = sim.now
    put({"app": "linpack", "phase": "done"})
    # Retention pruning runs at save time: a third write long after the
    # 6 s window forces the "running"-era checkpoint out of memory.
    sim.run(until=sim.now + 60.0)
    put({"app": "linpack", "phase": "archived"})
    sim.run(until=sim.now + 5.0)
    past = drive(sim, client.exec_query(
        Query(table="jobs", where={"_key": "job1"}, as_of=t_between)), max_time=30.0)
    assert past is not None
    return past


def test_as_of_beyond_window_answers_from_spill():
    past = _time_travel_run(spill_aged=True)
    assert [r["phase"] for r in past["rows"]] == ["running"]


def test_as_of_beyond_window_empty_without_spill():
    """The control: with spill off, the same read finds nothing — the
    pre-spill bounded-history behavior is unchanged."""
    past = _time_travel_run(spill_aged=False)
    assert past["rows"] == []
