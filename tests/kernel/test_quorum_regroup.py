"""Quorum-gated regroup: tie-breaker, minority refusal, bounded demotion.

Covers DESIGN.md §15: the MCS-style census protocol that parks any GSD
whose reachable set drops to half or less of the configured partitions,
the deterministic lowest-partition tie-breaker for exact-half splits,
and the minority side's write refusals while parked.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ClusterSpec, FaultInjector
from repro.errors import KernelError
from repro.kernel import KernelTimings, PhoenixKernel
from repro.sim import Simulator

HB = 10.0


def build(seed=5, partitions=4, quorum=True, interval=HB):
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, ClusterSpec.build(partitions=partitions, computes=2))
    timings = KernelTimings(heartbeat_interval=interval, quorum_demotion=quorum)
    kernel = PhoenixKernel(cluster, timings=timings)
    kernel.boot()
    return sim, cluster, kernel


def split_all(cluster, injector, side_a, side_b):
    for net in cluster.networks:
        injector.split_network(net, [side_a, side_b])


def heal_all(cluster, injector):
    for net in cluster.networks:
        injector.heal_network(net)


def sides(cluster, minority=("p2", "p3")):
    wanted = set(minority)
    a, b = set(), set()
    for part in cluster.partitions:
        (b if part.partition_id in wanted else a).update(part.all_nodes)
    return a, b


def leader_claims(kernel):
    claims = []
    for (service, node), daemon in kernel._live.items():
        if service != "gsd" or not daemon.alive:
            continue
        mg = daemon.metagroup
        if mg.view is not None and mg.is_leader:
            claims.append((node, mg.view.epoch))
    return claims


def gsd_on(kernel, node):
    return kernel._live.get(("gsd", node))


# -- quorum rule unit tests ---------------------------------------------------

def test_quorum_met_rule():
    sim, cluster, kernel = build()
    mg = kernel.gsd("p0").metagroup
    assert mg.quorum_met({"p0", "p1", "p2"})          # strict majority
    assert mg.quorum_met({"p1", "p2", "p3"})          # majority without p0
    assert not mg.quorum_met({"p3"})                  # strict minority
    assert mg.quorum_met({"p0", "p1"})                # exact half, tie-break side
    assert not mg.quorum_met({"p2", "p3"})            # exact half, other side
    assert mg.tie_break_partition() == "p0"


def test_quorum_rule_both_halves_never_win():
    """No 2-subset and its complement can both hold quorum."""
    sim, cluster, kernel = build()
    mg = kernel.gsd("p0").metagroup
    parts = {p.partition_id for p in cluster.partitions}
    import itertools

    for k in range(len(parts) + 1):
        for subset in itertools.combinations(sorted(parts), k):
            assert not (mg.quorum_met(subset) and mg.quorum_met(parts - set(subset)))


def test_regroup_timing_knobs_validated():
    with pytest.raises(KernelError):
        KernelTimings(regroup_timeout=0.0)
    with pytest.raises(KernelError):
        KernelTimings(regroup_heal_interval=-1.0)
    t = KernelTimings(heartbeat_interval=10.0)
    assert t.regroup_period == pytest.approx(2.5)  # max(2*rpc, hb/4)
    assert t.regroup_heal_period == pytest.approx(10.0)
    assert KernelTimings(regroup_timeout=7.0).regroup_period == 7.0


# -- the 2-vs-2 tie-breaker ---------------------------------------------------

def test_even_split_tie_breaker_one_leader():
    """A 2-vs-2 split converges to exactly one leader: the side holding
    the lowest configured partition id evicts the other; the other side
    parks instead of evicting back."""
    sim, cluster, kernel = build()
    injector = FaultInjector(cluster)
    sim.run(until=20.001)
    side_a, side_b = sides(cluster)
    split_all(cluster, injector, side_a, side_b)
    sim.run(until=sim.now + 12 * HB)

    # Tie-break side kept its leader and evicted the other side.
    view_a = kernel.gsd("p0").metagroup.view
    assert {part for part, _ in view_a.members} == {"p0", "p1"}
    claims = leader_claims(kernel)
    assert len(claims) == 1 and claims[0][0] == "p0s0"

    # The losing half parked (quorum.lost) — with members still in view:
    # this is failing-*before* semantics, not waiting for an empty view.
    for pid in ("p2", "p3"):
        mg = kernel.gsd(pid).metagroup
        assert mg.parked
        assert not mg.is_leader
        assert len(mg.view.members) >= 2
    parked_nodes = {r["node"] for r in sim.trace.records("quorum.lost")}
    assert {"p2s0", "p3s0"} <= parked_nodes

    # Heal: the parked side rejoins through epoch-fenced reconciliation.
    heal_all(cluster, injector)
    sim.run(until=sim.now + 15 * HB)
    views = {kernel.gsd(p.partition_id).metagroup.view.key for p in cluster.partitions}
    assert len(views) == 1
    assert all(not kernel.gsd(p.partition_id).metagroup.parked for p in cluster.partitions)
    claims = leader_claims(kernel)
    assert len(claims) == 1 and claims[0][0] == "p0s0"
    regained = {r["node"] for r in sim.trace.records("quorum.regained")}
    assert {"p2s0", "p3s0"} <= regained


def test_minority_refuses_writes_while_parked():
    """A parked GSD defers ``gsd.state`` checkpoint commits and bulletin
    exports (marked ``regroup.write_refused``), then flushes on unpark."""
    sim, cluster, kernel = build()
    injector = FaultInjector(cluster)
    sim.run(until=20.001)
    side_a, side_b = sides(cluster)
    split_all(cluster, injector, side_a, side_b)
    sim.run(until=sim.now + 10 * HB)
    assert kernel.gsd("p3").metagroup.parked

    # A real state change on the parked side: one of p3's computes dies.
    injector.crash_node("p3c0")
    sim.run(until=sim.now + 6 * HB)
    refusals = [
        r for r in sim.trace.records("regroup.write_refused", kind="node_state")
        if r["node"] == "p3s0" and r.get("subject") == "p3c0"
    ]
    assert refusals, "parked GSD should refuse (defer) the node-state commit"
    assert kernel.gsd("p3").node_state["p3c0"] == "down"  # local belief kept

    # Heal: the deferred state reaches the checkpoint store after unpark.
    heal_all(cluster, injector)
    sim.run(until=sim.now + 15 * HB)
    assert not kernel.gsd("p3").metagroup.parked
    ckpt = kernel._partition_daemon("ckpt", "p3")
    entry = ckpt.store.load("gsd.state.p3")
    assert entry is not None and entry.data["node_state"]["p3c0"] == "down"


def test_quorum_demotion_off_restores_view_emptiness_behavior():
    """``quorum_demotion=False`` is the pre-quorum kernel: an isolated
    leader keeps evicting until its view empties, and only then demotes
    (``leader.isolated``).  With gating on, it parks *before* that —
    while peers are still in the view — and never reigns alone."""
    # Old behavior: no parks, demotion only at empty view.
    sim, cluster, kernel = build(quorum=False)
    injector = FaultInjector(cluster)
    sim.run(until=20.001)
    leader = cluster.partition("p0").all_nodes
    side_a, side_b = sides(cluster, minority=("p1", "p2", "p3"))
    split_all(cluster, injector, set(leader), side_b | (side_a - set(leader)))
    sim.run(until=sim.now + 20 * HB)
    assert sim.trace.records("quorum.lost") == []
    assert sim.trace.records("leader.isolated")  # evicted everyone first
    assert len(kernel.gsd("p0").metagroup.view.members) == 1

    # Quorum gating: the cut-off leader parks with peers still in view.
    sim2, cluster2, kernel2 = build(quorum=True)
    injector2 = FaultInjector(cluster2)
    sim2.run(until=20.001)
    leader2 = cluster2.partition("p0").all_nodes
    side_a2, side_b2 = sides(cluster2, minority=("p1", "p2", "p3"))
    split_all(cluster2, injector2, set(leader2), side_b2 | (side_a2 - set(leader2)))
    sim2.run(until=sim2.now + 20 * HB)
    parks = sim2.trace.records("quorum.lost", node="p0s0")
    assert parks
    mg = kernel2.gsd("p0").metagroup
    assert mg.parked and not mg.is_leader
    assert len(mg.view.members) >= 2  # parked before the view emptied


def test_time_to_park_is_bounded():
    """A cut-off member parks within detection + diagnosis + report
    watchdog + one census round — well under six heartbeat intervals."""
    sim, cluster, kernel = build()
    injector = FaultInjector(cluster)
    sim.run(until=20.001)
    t0 = sim.now
    side_a, side_b = sides(cluster)
    split_all(cluster, injector, side_a, side_b)
    sim.run(until=t0 + 6 * HB)
    parks = sim.trace.records("quorum.lost")
    assert parks
    assert all(r.time - t0 <= 6 * HB for r in parks)


def test_regroup_census_spans_and_marks():
    """Census rounds are spanned (``gsd.regroup``) and probe marks carry
    the round id; parks pair with unparks across a heal."""
    sim, cluster, kernel = build()
    injector = FaultInjector(cluster)
    sim.run(until=20.001)
    side_a, side_b = sides(cluster)
    split_all(cluster, injector, side_a, side_b)
    sim.run(until=sim.now + 12 * HB)
    heal_all(cluster, injector)
    sim.run(until=sim.now + 15 * HB)
    spans = [r for r in sim.trace.records("gsd.regroup") if r.get("duration") is not None]
    assert spans
    assert all("live" in r.fields and "quorum" in r.fields for r in spans)
    probes = sim.trace.records("regroup.probe")
    assert probes and all(r.get("round") for r in probes)
    lost = sim.trace.records("quorum.lost")
    regained = sim.trace.records("quorum.regained")
    assert len(lost) == len(regained) >= 2


# -- property: no split schedule yields two quorum-side leaders ---------------

@pytest.mark.slow
@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    minority=st.sets(st.sampled_from(["p1", "p2", "p3"]), min_size=1, max_size=2),
    include_p0=st.booleans(),
    phase=st.floats(min_value=0.0, max_value=HB),
    hold=st.integers(min_value=8, max_value=14),
)
def test_property_at_most_one_quorum_leader_and_no_minority_writes(
    minority, include_p0, phase, hold
):
    """Any partition-aligned split schedule: at every instant at most one
    non-parked leader claim per epoch, and after the bounded regroup
    window (6 heartbeats) the minority side never gets a leadership
    placement write accepted.

    A minority-side princess may transiently take over (epoch-fenced)
    when she detects the leader's death before discovering the rest of
    the cluster is unreachable — the census then parks her; that is why
    the write window starts at ``t0 + 6*HB`` rather than ``t0``."""
    cut = set(minority) | ({"p0"} if include_p0 and len(minority) < 3 else set())
    sim, cluster, kernel = build(seed=7)
    injector = FaultInjector(cluster)
    sim.run(until=20.001 + phase)

    # The quorum rule decides which side is the minority (tie-break: p0).
    mg = kernel.gsd("p0").metagroup
    minority_parts = cut if not mg.quorum_met(cut) else (
        {p.partition_id for p in cluster.partitions} - cut
    )
    minority_nodes = set()
    for part in cluster.partitions:
        if part.partition_id in minority_parts:
            minority_nodes.update(part.all_nodes)

    placements = []
    orig = kernel.note_placement

    def spy(service, scope, node_id, epoch=None):
        ok = orig(service, scope, node_id, epoch=epoch)
        if ok and (service, scope) == ("metagroup", "leader"):
            placements.append((sim.now, node_id))
        return ok

    kernel.note_placement = spy
    side_a, side_b = sides(cluster, minority=sorted(cut))
    split_all(cluster, injector, side_a, side_b)
    t0 = sim.now
    end = t0 + hold * HB

    def assert_single_leader_per_epoch():
        by_epoch = {}
        for node, epoch in leader_claims(kernel):
            by_epoch.setdefault(epoch, []).append(node)
        for epoch, nodes in by_epoch.items():
            assert len(nodes) == 1, f"epoch {epoch} has leaders {nodes}"

    while sim.now < end:
        sim.run(until=min(sim.now + 0.25 * HB, end))
        assert_single_leader_per_epoch()
    # By the end of the hold every minority-side GSD has parked.
    for pid in sorted(minority_parts):
        mg_min = kernel.gsd(pid).metagroup
        assert mg_min.parked and not mg_min.is_leader
    heal_all(cluster, injector)
    settle = sim.now + 15 * HB
    while sim.now < settle:
        sim.run(until=min(sim.now + 0.25 * HB, settle))
        assert_single_leader_per_epoch()

    violations = [
        (t, n) for t, n in placements
        if t0 + 6 * HB <= t <= end and n in minority_nodes
    ]
    assert violations == []
    assert len(leader_claims(kernel)) == 1
