"""Relational query layer: AST, parser, executor, logical tables (pure)."""

import pytest

from repro.errors import KernelError
from repro.kernel.bulletin.query import (
    ALL_BASE_TABLES,
    Agg,
    Query,
    base_tables,
    execute,
    execute_on,
    parse,
)

NODES = [
    {"_key": "a", "_partition": "p0", "state": "up", "cpu_pct": 10.0, "reporting": 1},
    {"_key": "b", "_partition": "p0", "state": "up", "cpu_pct": 30.0, "reporting": 1},
    {"_key": "c", "_partition": "p1", "state": "down", "cpu_pct": None, "reporting": 0},
    {"_key": "d", "_partition": "p1", "state": "up", "reporting": 1},
]


# -- parser ------------------------------------------------------------------
def test_parse_full_clause_set():
    q = parse(
        "select state, count(*) as n from nodes where state == 'up' "
        "group by state order by n desc, state limit 3 as of 12.5"
    )
    assert q.table == "nodes"
    assert q.group_by == ("state",)
    assert q.aggs == (Agg("count", "*", "n"),)
    assert q.where == {"state": "up"}
    assert q.order_by == (("n", True), ("state", False))
    assert q.limit == 3
    assert q.as_of == 12.5


def test_parse_plain_select_and_star():
    q = parse("select _key, cpu_pct from nodes")
    assert q.select == ("_key", "cpu_pct") and not q.grouped
    assert parse("select * from jobs").select == ()


def test_parse_where_operators_and_lists():
    q = parse("select * from nodes where cpu_pct >= 10 and state in ['up', 'draining']")
    assert q.where["cpu_pct"] == {"op": ">=", "value": 10}
    assert q.where["state"] == {"op": "in", "value": ["up", "draining"]}


def test_parse_rejects_garbage():
    with pytest.raises(KernelError):
        parse("select * from nowhere")
    with pytest.raises(KernelError):
        parse("select median(cpu_pct) from nodes")
    with pytest.raises(KernelError):
        parse("select * from nodes order")


def test_validate_rules():
    with pytest.raises(KernelError):
        Query(table="nodes", aggs=(Agg("sum", "*"),)).validate()
    with pytest.raises(KernelError):
        Query(table="nodes", select=("cpu_pct",), aggs=(Agg("count", "*"),)).validate()
    with pytest.raises(KernelError):
        Query(table="nodes", aggs=(Agg("sum", "x", "v"), Agg("avg", "y", "v"))).validate()
    with pytest.raises(KernelError):
        Query(table="nodes", limit=-1).validate()


def test_query_payload_round_trip():
    q = parse("select state, avg(cpu_pct) as cpu from nodes group by state limit 2")
    assert Query.from_payload(q.to_payload()) == q
    assert q.live() is q  # no as_of -> same object
    past = parse("select * from nodes as of 3.0")
    assert past.live().as_of is None


# -- executor ----------------------------------------------------------------
def test_execute_filter_and_project():
    q = Query(table="nodes", where={"state": "up"}, select=("_key",))
    assert execute(q, NODES) == [{"_key": "a"}, {"_key": "b"}, {"_key": "d"}]


def test_execute_aggregates_skip_missing_and_null():
    q = Query(
        table="nodes",
        aggs=(
            Agg("count", "*", "n"),
            Agg("count", "cpu_pct", "n_cpu"),
            Agg("sum", "cpu_pct", "s"),
            Agg("avg", "cpu_pct", "a"),
            Agg("min", "cpu_pct", "lo"),
            Agg("max", "cpu_pct", "hi"),
        ),
    )
    [row] = execute(q, NODES)
    assert row == {"n": 4, "n_cpu": 2, "s": 40.0, "a": 20.0, "lo": 10.0, "hi": 30.0}


def test_execute_aggregate_over_no_numeric_values():
    q = Query(table="nodes", aggs=(Agg("sum", "cpu_pct", "s"), Agg("avg", "cpu_pct", "a")))
    [row] = execute(q, [{"_key": "x"}])
    assert row["s"] == 0.0 and row["a"] is None


def test_execute_group_order_limit():
    q = Query(
        table="nodes",
        group_by=("state",),
        aggs=(Agg("count", "*", "n"),),
        order_by=(("n", True),),
        limit=1,
    )
    assert execute(q, NODES) == [{"state": "up", "n": 3}]


def test_execute_grouped_over_empty_input_is_empty():
    q = Query(table="nodes", group_by=("state",), aggs=(Agg("count", "*", "n"),))
    assert execute(q, []) == []


def test_execute_order_by_mixed_types_is_total():
    q = Query(table="nodes", select=("_key", "cpu_pct"), order_by=(("cpu_pct", False),))
    keys = [r["_key"] for r in execute(q, NODES)]
    assert keys == ["a", "b", "c", "d"]  # numbers first, missing/None last (stable)


# -- logical tables ----------------------------------------------------------
def _physical(metrics, states):
    tables = {"node_metrics": metrics, "node_state": states, "apps": []}

    def get_rows(table):
        return tables.get(table, [])

    return get_rows


def test_nodes_full_outer_join_and_reporting_flag():
    metrics = [{"_key": "a", "_partition": "p0", "_updated_at": 5.0, "cpu_pct": 1.0}]
    states = [
        {"_key": "a", "_partition": "p0", "_updated_at": 7.0, "state": "up"},
        {"_key": "b", "_partition": "p0", "_updated_at": 3.0, "state": "down"},
    ]
    rows = execute_on(Query(table="nodes"), _physical(metrics, states))
    by_key = {r["_key"]: r for r in rows}
    assert set(by_key) == {"a", "b"}
    assert by_key["a"]["reporting"] == 1 and by_key["a"]["_updated_at"] == 7.0
    assert by_key["a"]["cpu_pct"] == 1.0 and by_key["a"]["state"] == "up"
    assert by_key["b"]["reporting"] == 0 and "cpu_pct" not in by_key["b"]


def test_services_projection_drops_blobs():
    health = [{
        "_key": "gsd@p0", "_partition": "p0", "_updated_at": 1.0,
        "service": "gsd", "node": "p0s0", "partition": "p0", "time": 1.0,
        "counters": {"big": 1}, "latency": {"p95": 2},
    }]
    tables = {"kernel_health": health}
    rows = execute_on(Query(table="services"), lambda t: tables.get(t, []))
    assert rows[0]["service"] == "gsd" and "counters" not in rows[0]
    full = execute_on(Query(table="health"), lambda t: tables.get(t, []))
    assert "counters" in full[0]


def test_base_table_catalog():
    assert base_tables("nodes") == ("node_metrics", "node_state")
    assert base_tables("jobs") == ("apps",)
    assert set(ALL_BASE_TABLES) == {"node_metrics", "node_state", "apps", "kernel_health"}
