"""Property: two-tier digested federation preserves view contents.

The same deterministic job workload and fault schedule run twice — once
on the flat full-mesh federation and once on the two-tier region
topology (DESIGN.md §16) — must converge to float-equal materialized
view contents, even when the schedule crashes an aggregator partition's
server mid-stream (forcing aggregator failover and a digest-watermark
resync at every remote view engine).  Inside the two-tier run the view
must also equal a from-scratch scan, which pins the IVM-over-digest path
itself, not just cross-topology agreement.

The workload writes only the ``apps`` table (explicit puts, retried
through failovers), so the compared contents are independent of
node-metric sampling and identical across topologies by construction —
any divergence is a federation bug, not workload noise.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ClusterSpec, FaultInjector
from repro.kernel import KernelTimings, PhoenixKernel, ports
from repro.kernel.bulletin.query import Agg, Query
from repro.sim import Simulator
from tests.kernel.conftest import drive
from tests.kernel.test_bulletin_views import rows_close
from tests.kernel.test_views_integration import _equivalent

JOBS_VIEW = Query(
    table="jobs",
    group_by=("phase",),
    aggs=(Agg("count", "*", "n"), Agg("min", "seq", "lo"), Agg("max", "seq", "hi")),
)

#: ``agg_crash`` kills p2s0 — in the two-tier run p2 is region 1's
#: aggregator, so this forces failover to p3 mid-stream; the flat run
#: takes the identical fault for a fair reference.
_ACTIONS = ("put", "put", "agg_crash", "recover", "idle")


def _put_retrying(sim, kernel, client, partition, key, row):
    """DB_PUT that rides out a bulletin failover; both topologies must
    end with identical table contents, so a put may not be dropped."""
    for _ in range(12):
        db_node = kernel.placement.get(("db", partition))
        if db_node is not None and kernel.cluster.node(db_node).up:
            reply = drive(sim, client._transport.rpc(
                client.node_id, db_node, ports.DB, ports.DB_PUT,
                {"table": "apps", "key": key, "row": row}, timeout=5.0,
            ), max_time=10.0)
            if reply == {"ok": True}:
                return
        sim.run(until=sim.now + 5.0)
    raise AssertionError(f"put {key!r} to {partition} never succeeded")


def _run_scenario(seed, actions, region_size, probe=False):
    sim = Simulator(seed=seed)
    cluster = Cluster(
        sim, ClusterSpec.build(partitions=6, computes=2, region_size=region_size)
    )
    timings = KernelTimings(heartbeat_interval=5.0, deadline_grace=0.1)
    kernel = PhoenixKernel(cluster, timings=timings)
    kernel.boot()
    sim.run(until=10.0)
    injector = FaultInjector(cluster)
    client = kernel.client(cluster.partitions[0].server)
    # View owner on p0 (region 0): cross-region deltas from p2..p5 reach
    # it as digests in the two-tier run.
    reply = drive(sim, client.register_view("prop.jobs", JOBS_VIEW, partition="p0"),
                  max_time=60.0)
    assert reply and reply.get("ok"), reply

    job_seq = 0
    crashed = False
    for action in actions:
        if action == "put":
            job_seq += 1
            partition = f"p{job_seq % 6}"
            _put_retrying(sim, kernel, client, partition, f"job{job_seq}", {
                "app": "prop", "seq": job_seq,
                "phase": ("running", "done")[job_seq % 2],
            })
        elif action == "agg_crash" and not crashed and cluster.node("p2s0").up:
            injector.crash_node("p2s0")
            crashed = True
        elif action == "recover" and crashed and not cluster.node("p2s0").up:
            injector.boot_node("p2s0")
            for svc in ("ppm", "detector", "wd"):
                if not cluster.hostos("p2s0").process_alive(svc):
                    kernel.start_service(svc, "p2s0")
        sim.run(until=sim.now + 12.0)

    sim.run(until=sim.now + 90.0)  # settle: failover, resync, rebuild
    if probe:
        # A write *after* the churn settles must still reach the view
        # through the (possibly failed-over) digest stream; earlier rows
        # may have expired from the bulletin by now, this one cannot.
        _put_retrying(sim, kernel, client, "p3", "probe", {
            "app": "prop", "seq": 99, "phase": "late",
        })
        sim.run(until=sim.now + 15.0)
    view = _equivalent(sim, client, "prop.jobs", JOBS_VIEW, attempts=20)
    return view["rows"]


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    seed=st.integers(0, 2**16),
    actions=st.lists(st.sampled_from(_ACTIONS), min_size=2, max_size=5),
)
def test_two_tier_view_contents_equal_flat_reference(seed, actions):
    flat = _run_scenario(seed, actions, region_size=None)
    two_tier = _run_scenario(seed, actions, region_size=2)
    assert rows_close(
        sorted(flat, key=str), sorted(two_tier, key=str)
    ), f"flat={flat!r} two_tier={two_tier!r}"


def test_aggregator_failover_mid_stream_converges():
    """The deterministic worst case: puts land while the remote region's
    aggregator is down, so digests arrive from the successor with a
    watermark gap the view engine must resync across."""
    rows = _run_scenario(7, ["put", "agg_crash", "put", "put", "recover", "put"],
                         region_size=2, probe=True)
    phases = {r["phase"]: r["n"] for r in rows}
    assert phases.get("late") == 1, rows
