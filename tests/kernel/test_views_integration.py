"""Materialized views end-to-end: equivalence, failover rebuild, time travel."""

import pytest

from repro.cluster import Cluster, ClusterSpec, FaultInjector
from repro.errors import ServiceUnavailable
from repro.kernel import KernelTimings, PhoenixKernel, ports
from repro.kernel.bulletin.query import Agg, Query
from repro.sim import Simulator
from tests.kernel.conftest import drive
from tests.kernel.test_bulletin_views import rows_close

NODES_BY_STATE = Query(
    table="nodes",
    group_by=("state",),
    aggs=(
        Agg("count", "*", "n"),
        Agg("sum", "cpu_pct", "cpu"),
        Agg("count", "cpu_pct", "cpu_n"),
        Agg("max", "cpu_pct", "cpu_max"),
    ),
)


def _boot(seed=11, partitions=3, computes=2):
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, ClusterSpec.build(partitions=partitions, computes=computes))
    timings = KernelTimings(heartbeat_interval=5.0, deadline_grace=0.1)
    kernel = PhoenixKernel(cluster, timings=timings)
    kernel.boot()
    sim.run(until=10.0)
    return sim, kernel, FaultInjector(cluster)


def _client(kernel, partition_index=0):
    return kernel.client(kernel.cluster.partitions[partition_index].server)


def _register(sim, client, name, query, partition):
    reply = drive(sim, client.register_view(name, query, partition=partition), max_time=60.0)
    assert reply and reply.get("ok"), reply
    return reply


def _equivalent(sim, client, name, query, attempts=10):
    """Assert the view matches a fresh scan in some stable window.

    Base tables mutate continuously (detector exports), so a single
    view-read/full-scan pair can straddle an in-flight delta; retry until
    a comparison lands in a quiet window — deterministic under the sim.
    """
    view = fresh = None
    for _ in range(attempts):
        view = drive(sim, client.read_view(name))
        fresh = drive(sim, client.exec_query(query))
        assert view is not None and fresh is not None
        if rows_close(view["rows"], fresh["rows"]):
            return view
        sim.run(until=sim.now + 0.5)
    raise AssertionError(f"view never converged: {view['rows']!r} vs {fresh['rows']!r}")


def test_view_equals_fresh_scan_and_stays_current():
    sim, kernel, _ = _boot()
    client = _client(kernel)
    reply = _register(sim, client, "t.nodes", NODES_BY_STATE, "p1")
    assert reply["owner"] == "p1" and kernel.view_owners["t.nodes"] == "p1"
    for _ in range(3):
        sim.run(until=sim.now + 7.0)
        _equivalent(sim, client, "t.nodes", NODES_BY_STATE)


def test_view_read_carries_watermarks_and_staleness():
    sim, kernel, _ = _boot()
    client = _client(kernel)
    _register(sim, client, "t.nodes", NODES_BY_STATE, "p1")
    sim.run(until=sim.now + 10.0)
    view = drive(sim, client.read_view("t.nodes"))
    assert view["ready"]
    assert set(view["watermarks"]) == {"p0", "p1", "p2"}
    assert view["watermark"]["epoch"] >= 1
    assert 0.0 <= view["staleness"] < 5.0


def test_second_view_on_same_owner_extends_tables():
    sim, kernel, _ = _boot()
    client = _client(kernel)
    _register(sim, client, "t.nodes", NODES_BY_STATE, "p1")
    jobs = Query(table="jobs", aggs=(Agg("count", "*", "n"),))
    _register(sim, client, "t.jobs", jobs, "p1")
    sim.run(until=sim.now + 5.0)
    listing = drive(sim, client.list_views(partition="p1"))
    assert {v["name"] for v in listing["views"]} == {"t.nodes", "t.jobs"}
    _equivalent(sim, client, "t.jobs", jobs)


def test_view_converges_after_node_churn():
    sim, kernel, injector = _boot()
    client = _client(kernel)
    _register(sim, client, "t.nodes", NODES_BY_STATE, "p1")
    victim = "p2c1"
    injector.crash_node(victim)
    sim.run(until=sim.now + 30.0)  # detect + state flip + metric expiry
    view = _equivalent(sim, client, "t.nodes", NODES_BY_STATE)
    down = [r for r in view["rows"] if r["state"] == "down"]
    assert down and down[0]["n"] == 1
    injector.boot_node(victim)
    for svc in ("ppm", "detector", "wd"):
        if not kernel.cluster.hostos(victim).process_alive(svc):
            kernel.start_service(svc, victim)
    sim.run(until=sim.now + 30.0)
    view = _equivalent(sim, client, "t.nodes", NODES_BY_STATE)
    assert not [r for r in view["rows"] if r["state"] == "down"]


def test_view_survives_owner_bulletin_failover():
    sim, kernel, injector = _boot()
    client = _client(kernel)
    _register(sim, client, "t.nodes", NODES_BY_STATE, "p1")
    old_node = kernel.placement[("db", "p1")]
    old_epoch = drive(sim, client.read_view("t.nodes"))["watermark"]["epoch"]
    injector.crash_node(old_node)
    sim.run(until=sim.now + 60.0)  # failover + view rebuild from checkpoints
    assert kernel.placement[("db", "p1")] != old_node
    assert kernel.view_owners["t.nodes"] == "p1"
    view = _equivalent(sim, client, "t.nodes", NODES_BY_STATE)
    assert view["watermark"]["epoch"] > old_epoch
    listing = drive(sim, client.list_views(partition="p1"))
    stats = listing["views"][0]["stats"]
    assert stats["rebuilds"] >= 1
    assert sim.trace.records("db.views_rebuilt")


def test_view_survives_two_consecutive_failovers():
    """Regression: a migration used to colocate the ckpt primary with its
    replica, so a second failover erased every checkpoint in the partition
    and the view (plus its definition) was gone for good. The GSD now
    re-separates the replica and the primary reseeds it."""
    sim, kernel, injector = _boot(seed=0)
    client = _client(kernel)
    _register(sim, client, "t.nodes", NODES_BY_STATE, "p1")
    for _ in range(2):
        injector.crash_node(kernel.placement[("db", "p1")])
        sim.run(until=sim.now + 12.0)
    sim.run(until=sim.now + 60.0)
    assert kernel.view_owners.get("t.nodes") == "p1"
    view = _equivalent(sim, client, "t.nodes", NODES_BY_STATE, attempts=20)
    assert view["ready"]
    # Separation restored: the replica must not share the primary's node.
    assert (
        kernel.placement[("ckpt.replica", "p1")] != kernel.placement[("ckpt", "p1")]
    )


def test_time_travel_round_trip():
    sim, kernel, _ = _boot()
    client = _client(kernel)
    # Checkpointing of base tables runs only while some view keeps delta
    # maintenance on — the jobs view doubles as the bootstrap.
    _register(sim, client, "t.jobs", Query(table="jobs", aggs=(Agg("count", "*", "n"),)), "p0")
    db_node = kernel.placement[("db", "p0")]

    def put(key, row):
        reply = drive(sim, client._transport.rpc(
            client.node_id, db_node, ports.DB, ports.DB_PUT,
            {"table": "apps", "key": key, "row": row}, timeout=5.0,
        ))
        assert reply == {"ok": True}

    put("job1", {"app": "linpack", "phase": "running"})
    sim.run(until=sim.now + 1.0)  # past the checkpoint debounce
    t_between = sim.now
    sim.run(until=sim.now + 0.2)
    put("job1", {"app": "linpack", "phase": "done"})
    sim.run(until=sim.now + 1.0)

    probe = Query(table="jobs", where={"_key": "job1"})
    live = drive(sim, client.exec_query(probe))
    assert live["rows"][0]["phase"] == "done"
    past = drive(sim, client.exec_query(Query(
        table="jobs", where={"_key": "job1"}, as_of=t_between)))
    assert past["rows"][0]["phase"] == "running"
    assert past["as_of"] == t_between
    assert "p0" in past["versions"]
    # Past the bounded history: nothing retained that far back.
    ancient = drive(sim, client.exec_query(Query(table="jobs", as_of=0.5)))
    assert ancient["rows"] == []


def test_drop_view_unregisters():
    sim, kernel, _ = _boot()
    client = _client(kernel)
    _register(sim, client, "t.nodes", NODES_BY_STATE, "p1")
    reply = drive(sim, client.drop_view("t.nodes"))
    assert reply and reply.get("ok")
    assert "t.nodes" not in kernel.view_owners
    with pytest.raises(ServiceUnavailable):
        client.read_view("t.nodes")
