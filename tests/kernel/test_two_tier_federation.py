"""Two-tier federation (DESIGN.md §16): regions, aggregators, digests.

Covers the hierarchical topology end to end: the spec's positional
region grouping, the kernel's epoch-fenced aggregator election, the
event service's funnel routing (intra-region mesh, digested cross-region
hops through aggregators, one-hop ingress relay), delta digestion, and
the bulletin's region-scoped query / AS OF fan-out.
"""

import types

import pytest

from repro.cluster import Cluster, ClusterSpec, FaultInjector
from repro.errors import ClusterError
from repro.kernel import KernelTimings, PhoenixKernel
from repro.kernel.bulletin.query import Agg, Query
from repro.kernel.events import types as ev
from repro.kernel.events.digest import digest_batch
from repro.sim import Simulator
from tests.kernel.conftest import drive
from tests.kernel.test_events import publish, subscribe_collector


def boot_two_tier(seed=11, partitions=6, region_size=2, computes=2, until=1.0, **timing_kwargs):
    sim = Simulator(seed=seed)
    cluster = Cluster(
        sim, ClusterSpec.build(partitions=partitions, computes=computes, region_size=region_size)
    )
    # Health reporting populates the ``nodes`` logical table the query
    # tests read (same knob the query CLI's testbed uses).
    timing_kwargs.setdefault("health_report_interval", 2.5)
    kernel = PhoenixKernel(cluster, timings=KernelTimings(**timing_kwargs))
    kernel.boot()
    sim.run(until=until)
    return sim, cluster, kernel


# -- spec-level region topology ----------------------------------------------


def test_spec_regions_positional_grouping():
    spec = ClusterSpec.build(partitions=5, computes=1, region_size=2)
    assert spec.regions() == (("p0", "p1"), ("p2", "p3"), ("p4",))
    assert [spec.region_of(f"p{i}") for i in range(5)] == [0, 0, 1, 1, 2]


def test_spec_flat_is_one_region():
    spec = ClusterSpec.build(partitions=3, computes=1)
    assert spec.regions() == (("p0", "p1", "p2"),)
    assert spec.region_of("p2") == 0


def test_spec_region_size_validated():
    with pytest.raises(ClusterError):
        ClusterSpec.build(partitions=2, computes=1, region_size=0)


# -- kernel aggregator election ----------------------------------------------


def test_aggregator_election_first_present_per_region():
    sim, cluster, kernel = boot_two_tier(until=30.0)
    assert kernel.regions_enabled
    assert kernel.region_aggregators == {0: "p0", 1: "p2", 2: "p4"}
    assert kernel.is_aggregator("p2") and not kernel.is_aggregator("p3")
    assert kernel.region_partitions("p3") == ("p2", "p3")
    assert kernel.remote_aggregators("p2") == ["p0", "p4"]


def test_flat_mode_has_no_aggregators():
    sim = Simulator(seed=11)
    cluster = Cluster(sim, ClusterSpec.build(partitions=3, computes=2))
    kernel = PhoenixKernel(cluster)
    assert not kernel.regions_enabled
    assert kernel.region_aggregators == {}
    assert not kernel.is_aggregator("p0")
    assert kernel.remote_aggregators("p0") == []


def test_aggregator_election_is_epoch_fenced():
    sim, cluster, kernel = boot_two_tier(until=30.0)
    epoch = kernel._aggregator_epoch
    assert epoch > 0
    # A stale view (healed minority replaying history) cannot roll the
    # aggregator map backwards.
    stale = types.SimpleNamespace(
        epoch=epoch - 1, members=(("p1", "p1s0"), ("p3", "p3s0"), ("p5", "p5s0"))
    )
    kernel.note_view(stale)
    assert kernel.region_aggregators == {0: "p0", 1: "p2", 2: "p4"}
    # The same membership at a newer epoch does re-elect.
    fresh = types.SimpleNamespace(epoch=epoch + 1, members=stale.members)
    kernel.note_view(fresh)
    assert kernel.region_aggregators == {0: "p1", 1: "p3", 2: "p5"}


def test_aggregator_fails_over_on_server_crash():
    """Crashing the region-1 aggregator's server re-elects p3 (the
    region's next configured partition) once the meta-group evicts p2."""
    sim, cluster, kernel = boot_two_tier(
        until=30.0, heartbeat_interval=5.0, deadline_grace=0.1
    )
    assert kernel.region_aggregators[1] == "p2"
    FaultInjector(cluster).crash_node("p2s0")
    sim.run(until=sim.now + 60.0)
    marks = sim.trace.records("region.aggregator")
    assert any(r["region"] == 1 and r["partition"] == "p3" for r in marks)


# -- delta digestion ----------------------------------------------------------


def _delta(seq, key, value, table="nodes", partition="p0", epoch=1, op="put"):
    return {
        "event_id": f"e{seq}",
        "type": ev.DB_DELTA,
        "source": "p0s0",
        "partition": partition,
        "time": float(seq),
        "data": {
            "table": table, "partition": partition, "epoch": epoch,
            "seq": seq, "key": key, "op": op,
            "row": None if op == "del" else {"v": value}, "t": float(seq),
        },
        "span": "",
    }


def test_digest_folds_contiguous_run_keeping_latest_per_key():
    batch = [_delta(1, "a", 1), _delta(2, "b", 1), _delta(3, "a", 2)]
    out = digest_batch(batch)
    assert len(out) == 1
    digest = out[0]
    assert digest["type"] == ev.DB_DELTA_DIGEST
    assert digest["event_id"] == "e3+dig3"
    data = digest["data"]
    assert (data["seq_lo"], data["seq_hi"]) == (1, 3)
    # Intermediate version of "a" dropped; survivors in seq order.
    assert [(d["key"], d["seq"]) for d in data["deltas"]] == [("b", 2), ("a", 3)]
    assert data["deltas"][1]["row"] == {"v": 2}


def test_digest_gap_splits_runs_and_single_deltas_pass_through():
    batch = [_delta(1, "a", 1), _delta(2, "a", 2), _delta(4, "a", 4)]
    out = digest_batch(batch)
    assert [p["type"] for p in out] == [ev.DB_DELTA_DIGEST, ev.DB_DELTA]
    assert out[0]["data"]["seq_hi"] == 2
    assert out[1]["data"]["seq"] == 4  # lone run: plain delta, untouched


def test_digest_separates_streams_and_passes_foreign_events():
    other = {"event_id": "x1", "type": ev.APP_STARTED, "source": "n", "partition": "p1",
             "time": 0.0, "data": {}, "span": ""}
    batch = [
        _delta(1, "a", 1), other, _delta(2, "a", 2),
        _delta(1, "j", 9, table="jobs"),
    ]
    out = digest_batch(batch)
    # The nodes run folds (surfacing at its last member, after `other`);
    # the jobs stream is a lone delta and survives verbatim.
    assert [p["type"] for p in out] == [ev.APP_STARTED, ev.DB_DELTA_DIGEST, ev.DB_DELTA]
    assert out[2]["data"]["table"] == "jobs"


def test_digest_is_idempotent_on_digests():
    once = digest_batch([_delta(1, "a", 1), _delta(2, "a", 2)])
    assert digest_batch(list(once)) == once


# -- event service funnel routing ---------------------------------------------


def test_cross_region_event_delivered_once_via_aggregators():
    sim, cluster, kernel = boot_two_tier(until=30.0)
    inbox = subscribe_collector(
        kernel, sim, "p0c0", "c1", types=(ev.APP_STARTED,), partition="p0"
    )
    # Published five regions of hops away: p5's ES -> aggregator p4 ->
    # cross hop to aggregator p0 -> local delivery (+ relay into p1).
    publish(kernel, sim, "p5c0", ev.APP_STARTED, {"app": "x"}, partition="p5")
    sim.run(until=sim.now + 5.0)
    assert [e.data["app"] for e in inbox] == ["x"]
    assert sim.trace.counter("es.forward_batches_cross") > 0
    assert sim.trace.counter("es.forward_batches_intra") > 0


def test_non_aggregator_partitions_open_no_cross_region_streams():
    """Every partition publishes; only aggregators talk across regions,
    so per-partition datagrams stay O(P/R + R), not O(P)."""
    sim, cluster, kernel = boot_two_tier(until=30.0)
    inboxes = [
        subscribe_collector(
            kernel, sim, f"p{i}c0", f"c{i}", types=(ev.APP_STARTED,), partition=f"p{i}"
        )
        for i in range(6)
    ]
    b0 = sim.trace.counter("es.forward_batches")
    for i in range(6):
        publish(kernel, sim, f"p{i}c1", ev.APP_STARTED, {"src": i}, partition=f"p{i}")
    sim.run(until=sim.now + 5.0)
    # Everyone still sees all six events exactly once...
    for inbox in inboxes:
        assert sorted(e.data["src"] for e in inbox) == list(range(6))
    # ...in fewer total datagrams than the flat all-pairs mesh would use.
    batches = sim.trace.counter("es.forward_batches") - b0
    assert batches < 6 * 5


# -- bulletin queries over the two-tier fabric --------------------------------


def test_global_query_full_coverage_through_region_fanout():
    sim, cluster, kernel = boot_two_tier(until=35.0)
    client = kernel.client("p3c0")
    reply = drive(sim, client.query_bulletin("node_metrics"), max_time=30.0)
    assert reply is not None and reply["partitions_missing"] == []
    assert len(reply["rows"]) == cluster.size
    assert set(reply["watermarks"]) == {f"p{i}" for i in range(6)}


def test_global_aggregate_composes_across_regions():
    sim, cluster, kernel = boot_two_tier(until=35.0)
    client = kernel.client("p0c0")
    reply = drive(
        sim, client.query_bulletin("node_metrics", aggregate=("cpu_pct",)), max_time=30.0
    )
    assert reply is not None and reply["partitions_missing"] == []
    agg = reply["aggregate"]["cpu_pct"]
    assert agg["count"] == cluster.size
    assert agg["min"] <= agg["sum"] / agg["count"] <= agg["max"]


def test_exec_query_group_by_covers_all_partitions():
    sim, cluster, kernel = boot_two_tier(until=35.0)
    client = kernel.client("p5c0")
    query = Query(table="nodes", group_by=("state",), aggs=(Agg("count", "*", "n"),))
    reply = drive(sim, client.exec_query(query), max_time=30.0)
    assert reply is not None
    assert sum(row["n"] for row in reply["rows"]) == cluster.size


def test_as_of_pulls_remote_regions_through_aggregator_summaries():
    sim, cluster, kernel = boot_two_tier(until=35.0)
    client = kernel.client("p0c0")
    # Checkpointing runs only under view-driven delta maintenance.
    reply = drive(sim, client.register_view("tt.nodes", Query(table="nodes")), max_time=30.0)
    assert reply and reply.get("ok")
    sim.run(until=sim.now + 30.0)
    past = drive(sim, client.exec_query(Query(table="nodes", as_of=sim.now - 2.0)), max_time=30.0)
    assert past is not None and past["partitions_missing"] == []
    assert len(past["rows"]) == cluster.size
    assert set(past["versions"]) == {f"p{i}" for i in range(6)}
    # Remote regions answered via DB_ASOF aggregator summaries, not 1:1 pulls.
    assert sim.trace.counter("db.asof_summaries") > 0
