"""Predicate language + aggregation unit and integration tests."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import KernelError
from repro.kernel.query import (
    aggregate_mean,
    aggregate_rows,
    matches,
    merge_aggregates,
    validate_where,
)
from tests.kernel.conftest import drive

# -- matcher unit tests --------------------------------------------------------


def test_plain_values_mean_equality():
    assert matches({"a": 1}, {"a": 1})
    assert not matches({"a": 1}, {"a": 2})
    assert not matches({"a": 1}, {})


def test_empty_or_none_where_matches_everything():
    assert matches(None, {"x": 1})
    assert matches({}, {})


def test_comparison_operators():
    row = {"cpu": 75.0}
    assert matches({"cpu": {"op": ">", "value": 50}}, row)
    assert not matches({"cpu": {"op": ">", "value": 80}}, row)
    assert matches({"cpu": {"op": ">=", "value": 75}}, row)
    assert matches({"cpu": {"op": "<", "value": 80}}, row)
    assert matches({"cpu": {"op": "<=", "value": 75}}, row)
    assert matches({"cpu": {"op": "!=", "value": 75.1}}, row)
    assert not matches({"cpu": {"op": "==", "value": 75.1}}, row)


def test_in_and_contains():
    assert matches({"state": {"op": "in", "value": ["down", "failed"]}}, {"state": "down"})
    assert not matches({"state": {"op": "in", "value": ["down"]}}, {"state": "up"})
    assert matches({"name": {"op": "contains", "value": "web"}}, {"name": "shop-web-1"})
    assert not matches({"name": {"op": "contains", "value": "db"}}, {"name": "shop-web-1"})


def test_missing_field_semantics():
    assert not matches({"x": {"op": ">", "value": 0}}, {})
    assert matches({"x": {"op": "!=", "value": 5}}, {})  # missing is "not equal"


def test_type_errors_are_non_matches():
    assert not matches({"cpu": {"op": ">", "value": 50}}, {"cpu": "not-a-number"})
    assert not matches({"name": {"op": "contains", "value": "x"}}, {"name": 42})


def test_multiple_conditions_conjunctive():
    where = {"cpu": {"op": ">", "value": 50}, "state": "up"}
    assert matches(where, {"cpu": 60, "state": "up"})
    assert not matches(where, {"cpu": 60, "state": "down"})
    assert not matches(where, {"cpu": 40, "state": "up"})


def test_validate_where():
    validate_where(None)
    validate_where({"a": 1, "b": {"op": "<", "value": 3}})
    with pytest.raises(KernelError):
        validate_where("not-a-dict")  # type: ignore[arg-type]
    with pytest.raises(KernelError):
        validate_where({"": 1})
    with pytest.raises(KernelError):
        validate_where({"a": {"op": "~", "value": 1}})
    with pytest.raises(KernelError):
        validate_where({"a": {"op": "=="}})


@given(st.floats(allow_nan=False, allow_infinity=False), st.floats(allow_nan=False, allow_infinity=False))
def test_property_comparison_ops_consistent(actual, threshold):
    row = {"v": actual}
    assert matches({"v": {"op": ">", "value": threshold}}, row) == (actual > threshold)
    assert matches({"v": {"op": "<=", "value": threshold}}, row) == (actual <= threshold)


# -- aggregation unit tests ----------------------------------------------------


def test_aggregate_rows_basic():
    rows = [{"cpu": 10.0}, {"cpu": 30.0}, {"cpu": 20.0, "mem": 5.0}]
    agg = aggregate_rows(rows, ["cpu", "mem"])
    assert agg["cpu"] == {"sum": 60.0, "count": 3.0, "min": 10.0, "max": 30.0}
    assert agg["mem"]["count"] == 1.0


def test_aggregate_skips_non_numeric_and_bools():
    rows = [{"v": 1}, {"v": "x"}, {"v": True}, {"v": 2.5}]
    agg = aggregate_rows(rows, ["v"])
    assert agg["v"]["count"] == 2.0
    assert agg["v"]["sum"] == 3.5


def test_aggregate_empty():
    agg = aggregate_rows([], ["v"])
    assert agg["v"]["count"] == 0.0
    assert math.isnan(aggregate_mean(agg["v"]))


def test_merge_aggregates():
    a = aggregate_rows([{"v": 1.0}, {"v": 3.0}], ["v"])
    b = aggregate_rows([{"v": 5.0}], ["v"])
    merged = merge_aggregates([a, b])
    assert merged["v"] == {"sum": 9.0, "count": 3.0, "min": 1.0, "max": 5.0}
    assert aggregate_mean(merged["v"]) == pytest.approx(3.0)


@given(st.lists(st.lists(st.floats(-1e6, 1e6), max_size=10), min_size=1, max_size=5))
def test_property_merge_equals_flat_aggregate(groups):
    parts = [aggregate_rows([{"v": x} for x in group], ["v"]) for group in groups]
    merged = merge_aggregates(parts)
    flat = aggregate_rows([{"v": x} for group in groups for x in group], ["v"])
    for key in ("sum", "count", "min", "max"):
        assert merged["v"][key] == pytest.approx(flat["v"][key])


# -- integration: operators + aggregate push-down over the federation ---------


def test_bulletin_query_with_operator_where(kernel, sim):
    from repro.kernel import ports

    db = kernel.placement[("db", "p0")]
    for key, cpu in (("a", 10.0), ("b", 80.0), ("c", 95.0)):
        drive(sim, kernel.cluster.transport.rpc(
            "p0c0", db, ports.DB, ports.DB_PUT,
            {"table": "load", "key": key, "row": {"cpu": cpu}}))
    reply = drive(sim, kernel.client("p0c0").query_bulletin(
        "load", where={"cpu": {"op": ">", "value": 50}}))
    assert sorted(r["_key"] for r in reply["rows"]) == ["b", "c"]


def test_bulletin_aggregate_pushdown(kernel, sim):
    sim.run(until=sim.now + 6.0)  # detectors exported node_metrics
    reply = drive(sim, kernel.client("p0c0").query_bulletin(
        "node_metrics", aggregate=["cpu_pct", "mem_pct"]))
    assert reply is not None and "aggregate" in reply
    assert reply["row_count"] == kernel.cluster.size
    assert "rows" not in reply
    mean_cpu = aggregate_mean(reply["aggregate"]["cpu_pct"])
    assert 0.0 < mean_cpu < 30.0
    assert reply["aggregate"]["cpu_pct"]["count"] == kernel.cluster.size


def test_bulletin_invalid_where_rejected_cleanly(kernel, sim):
    from repro.kernel import ports

    db = kernel.placement[("db", "p0")]
    reply = drive(sim, kernel.cluster.transport.rpc(
        "p0c0", db, ports.DB, ports.DB_QUERY,
        {"table": "load", "where": {"x": {"op": "~", "value": 1}}, "scope": "local"}))
    assert "error" in reply


def test_event_subscription_with_operator_filter(kernel, sim):
    from tests.kernel.test_events import publish, subscribe_collector

    inbox = subscribe_collector(
        kernel, sim, "p0c0", "hot",
        where={"cpu": {"op": ">", "value": 90}})
    publish(kernel, sim, "p0c1", "node.failure", {"cpu": 50})
    publish(kernel, sim, "p0c1", "node.failure", {"cpu": 95})
    sim.run(until=sim.now + 0.5)
    assert [e.data["cpu"] for e in inbox] == [95]
