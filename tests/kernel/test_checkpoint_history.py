"""Checkpoint version history (rollback support)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CheckpointError
from repro.kernel import ports
from repro.kernel.checkpoint.store import CheckpointStore
from tests.kernel.conftest import drive


def test_history_retains_recent_versions():
    store = CheckpointStore(history=3)
    for i in range(1, 6):
        store.save("k", {"v": i}, now=float(i))
    assert store.versions("k") == [3, 4, 5]
    assert store.load("k").data == {"v": 5}
    assert store.load("k", version=3).data == {"v": 3}
    assert store.load("k", version=1) is None  # evicted
    assert store.load("k", version=99) is None


def test_history_depth_one_behaves_like_latest_only():
    store = CheckpointStore(history=1)
    store.save("k", {"v": 1}, now=0.0)
    store.save("k", {"v": 2}, now=1.0)
    assert store.versions("k") == [2]


def test_idempotent_rewrite_of_same_version():
    store = CheckpointStore()
    store.save("k", {"v": 1}, now=0.0, version=7)
    store.save("k", {"v": 2}, now=1.0, version=7)
    assert store.versions("k") == [7]
    assert store.load("k").data == {"v": 2}


def test_invalid_history_depth():
    with pytest.raises(CheckpointError):
        CheckpointStore(history=0)


def test_delete_drops_all_versions():
    store = CheckpointStore()
    store.save("k", {"v": 1}, now=0.0)
    store.save("k", {"v": 2}, now=1.0)
    assert store.delete("k")
    assert store.versions("k") == []


def test_dump_only_latest_but_absorb_preserves_monotonicity():
    a = CheckpointStore()
    a.save("k", {"v": 1}, now=0.0)
    a.save("k", {"v": 2}, now=1.0)
    b = CheckpointStore()
    assert b.absorb(a.dump(), now=2.0) == 1
    assert b.versions("k") == [2]


@given(st.lists(st.integers(0, 50), min_size=1, max_size=30))
def test_property_history_is_suffix_of_saves(values):
    store = CheckpointStore(history=4)
    for i, v in enumerate(values):
        store.save("k", {"v": v}, now=float(i))
    retained = store.versions("k")
    assert retained == list(range(len(values) + 1 - len(retained), len(values) + 1))
    for version in retained:
        assert store.load("k", version=version).data == {"v": values[version - 1]}


def test_load_specific_version_over_rpc(kernel, sim):
    t = kernel.cluster.transport
    ckpt_node = kernel.placement[("ckpt", "p0")]
    for i in (1, 2, 3):
        drive(sim, t.rpc("p0c0", ckpt_node, ports.CKPT, ports.CKPT_SAVE,
                         {"key": "svc", "data": {"gen": i}}))
    reply = drive(sim, t.rpc("p0c0", ckpt_node, ports.CKPT, ports.CKPT_LOAD,
                             {"key": "svc", "version": 2}))
    assert reply["found"] and reply["data"] == {"gen": 2}
    assert reply["versions"] == [1, 2, 3]
    reply = drive(sim, t.rpc("p0c0", ckpt_node, ports.CKPT, ports.CKPT_LOAD, {"key": "svc"}))
    assert reply["data"] == {"gen": 3}
