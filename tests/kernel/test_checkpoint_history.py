"""Checkpoint version history (rollback support)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CheckpointError
from repro.kernel import ports
from repro.kernel.checkpoint.store import CheckpointStore
from tests.kernel.conftest import drive


def test_history_retains_recent_versions():
    store = CheckpointStore(history=3)
    for i in range(1, 6):
        store.save("k", {"v": i}, now=float(i))
    assert store.versions("k") == [3, 4, 5]
    assert store.load("k").data == {"v": 5}
    assert store.load("k", version=3).data == {"v": 3}
    assert store.load("k", version=1) is None  # evicted
    assert store.load("k", version=99) is None


def test_history_depth_one_behaves_like_latest_only():
    store = CheckpointStore(history=1)
    store.save("k", {"v": 1}, now=0.0)
    store.save("k", {"v": 2}, now=1.0)
    assert store.versions("k") == [2]


def test_idempotent_rewrite_of_same_version():
    store = CheckpointStore()
    store.save("k", {"v": 1}, now=0.0, version=7)
    store.save("k", {"v": 2}, now=1.0, version=7)
    assert store.versions("k") == [7]
    assert store.load("k").data == {"v": 2}


def test_invalid_history_depth():
    with pytest.raises(CheckpointError):
        CheckpointStore(history=0)


def test_delete_drops_all_versions():
    store = CheckpointStore()
    store.save("k", {"v": 1}, now=0.0)
    store.save("k", {"v": 2}, now=1.0)
    assert store.delete("k")
    assert store.versions("k") == []


def test_dump_only_latest_but_absorb_preserves_monotonicity():
    a = CheckpointStore()
    a.save("k", {"v": 1}, now=0.0)
    a.save("k", {"v": 2}, now=1.0)
    b = CheckpointStore()
    assert b.absorb(a.dump(), now=2.0) == 1
    assert b.versions("k") == [2]


@given(st.lists(st.integers(0, 50), min_size=1, max_size=30))
def test_property_history_is_suffix_of_saves(values):
    store = CheckpointStore(history=4)
    for i, v in enumerate(values):
        store.save("k", {"v": v}, now=float(i))
    retained = store.versions("k")
    assert retained == list(range(len(values) + 1 - len(retained), len(values) + 1))
    for version in retained:
        assert store.load("k", version=version).data == {"v": values[version - 1]}


# -- time-based retention (``retention_window``) ------------------------------

def test_retention_window_keeps_whole_span():
    """A time window retains every version younger than the window even
    past the 4-version count cap the default policy would enforce."""
    store = CheckpointStore(retention_window=10.0)
    for i in range(1, 9):
        store.save("k", {"v": i}, now=float(i))
    # At now=8.0 the horizon is -2.0: nothing aged out yet.
    assert store.versions("k") == list(range(1, 9))


def test_retention_window_ages_out_but_keeps_latest():
    store = CheckpointStore(retention_window=5.0)
    store.save("k", {"v": 1}, now=0.0)
    store.save("k", {"v": 2}, now=1.0)
    store.save("k", {"v": 3}, now=20.0)  # horizon 15.0 evicts v1, v2
    assert store.versions("k") == [3]
    store2 = CheckpointStore(retention_window=5.0)
    store2.save("k", {"v": 1}, now=0.0)
    # A lone stale version survives: the latest is always kept.
    store2.save("k2", {"v": 9}, now=100.0)
    assert store2.versions("k") == [1]


def test_retention_window_validation():
    with pytest.raises(CheckpointError):
        CheckpointStore(retention_window=0.0)
    with pytest.raises(CheckpointError):
        CheckpointStore(retention_window=-3.0)


def test_retention_window_knob_reaches_ckpt_daemons(sim):
    """``KernelTimings.ckpt_retention_window`` configures every checkpoint
    daemon's store (primary and replica)."""
    from repro.cluster import Cluster, ClusterSpec
    from repro.kernel import KernelTimings, PhoenixKernel

    cluster = Cluster(sim, ClusterSpec.build(partitions=2, computes=2))
    kernel = PhoenixKernel(cluster, timings=KernelTimings(ckpt_retention_window=120.0))
    kernel.boot()
    sim.run(until=5.0)
    stores = [
        daemon.store for (service, _), daemon in kernel._live.items()
        if service == "ckpt"
    ]
    assert stores and all(s.retention_window == 120.0 for s in stores)
    t = cluster.transport
    ckpt_node = kernel.placement[("ckpt", "p0")]
    for i in range(1, 8):
        drive(sim, t.rpc("p0c0", ckpt_node, ports.CKPT, ports.CKPT_SAVE,
                         {"key": "svc", "data": {"gen": i}}))
    reply = drive(sim, t.rpc("p0c0", ckpt_node, ports.CKPT, ports.CKPT_LOAD,
                             {"key": "svc", "version": 1}))
    assert reply["found"]  # the count cap (4) no longer applies
    assert reply["versions"] == list(range(1, 8))


def test_load_specific_version_over_rpc(kernel, sim):
    t = kernel.cluster.transport
    ckpt_node = kernel.placement[("ckpt", "p0")]
    for i in (1, 2, 3):
        drive(sim, t.rpc("p0c0", ckpt_node, ports.CKPT, ports.CKPT_SAVE,
                         {"key": "svc", "data": {"gen": i}}))
    reply = drive(sim, t.rpc("p0c0", ckpt_node, ports.CKPT, ports.CKPT_LOAD,
                             {"key": "svc", "version": 2}))
    assert reply["found"] and reply["data"] == {"gen": 2}
    assert reply["versions"] == [1, 2, 3]
    reply = drive(sim, t.rpc("p0c0", ckpt_node, ports.CKPT, ports.CKPT_LOAD, {"key": "svc"}))
    assert reply["data"] == {"gen": 3}
