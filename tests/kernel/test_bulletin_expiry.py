"""Bulletin housekeeping: stale detector rows are evicted."""


def test_dead_node_rows_expire(kernel, sim, injector):
    sim.run(until=10.0)  # detectors exported at least twice
    db = kernel.bulletin("p0")
    assert db.store.get("node_metrics", "p0c0") is not None
    injector.crash_node("p0c0")
    # After 4 detector intervals without exports, the row is gone.
    sim.run(until=sim.now + 6 * kernel.timings.detector_interval)
    assert db.store.get("node_metrics", "p0c0") is None
    assert db.store.get("net_state", "p0c0") is None
    assert sim.trace.counter("db.expired") > 0


def test_live_node_rows_survive(kernel, sim):
    sim.run(until=10.0 + 8 * kernel.timings.detector_interval)
    db = kernel.bulletin("p0")
    for node_id in kernel.cluster.partition("p0").all_nodes:
        assert db.store.get("node_metrics", node_id) is not None, node_id


def test_finished_app_rows_expire_eventually(kernel, sim):
    from tests.kernel.conftest import drive

    client = kernel.client("p0s0")
    drive(sim, client.spawn_job("p0c0", "ephemeral", cpus=1, duration=2.0))
    sim.run(until=sim.now + 5.0)
    db = kernel.bulletin("p0")
    assert db.store.query("apps", {"job_id": "ephemeral"})
    sim.run(until=sim.now + 14 * kernel.timings.detector_interval)
    assert db.store.query("apps", {"job_id": "ephemeral"}) == []
