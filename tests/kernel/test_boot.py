"""Kernel boot: placement, initial view, quiet-cluster stability."""

import pytest

from repro.errors import KernelError, ServiceUnavailable


def test_boot_places_partition_services_on_server_nodes(kernel):
    for part in kernel.cluster.partitions:
        pid = part.partition_id
        assert kernel.placement[("gsd", pid)] == part.server
        assert kernel.placement[("es", pid)] == part.server
        assert kernel.placement[("db", pid)] == part.server
        assert kernel.placement[("ckpt", pid)] == part.server
        assert kernel.placement[("ckpt.replica", pid)] == part.backups[0]


def test_boot_places_single_instances_on_first_server(kernel):
    first = kernel.cluster.partitions[0]
    assert kernel.placement[("config", first.partition_id)] == first.server
    assert kernel.placement[("security", first.partition_id)] == first.server
    assert kernel.config_service().alive
    assert kernel.security_service().alive


def test_every_node_runs_wd_ppm_detector(kernel):
    for node_id in kernel.cluster.nodes:
        hostos = kernel.cluster.hostos(node_id)
        assert hostos.process_alive("wd"), node_id
        assert hostos.process_alive("ppm"), node_id
        assert hostos.process_alive("detector"), node_id


def test_initial_view_covers_all_partitions_in_order(kernel):
    view = kernel.gsd("p0").metagroup.view
    assert view.view_id == 1
    assert [m[0] for m in view.members] == ["p0", "p1", "p2"]
    assert kernel.gsd("p0").metagroup.is_leader
    assert kernel.gsd("p1").metagroup.is_princess
    assert not kernel.gsd("p2").metagroup.is_leader
    assert kernel.placement[("metagroup", "leader")] == "p0s0"


def test_all_members_share_the_view(kernel):
    views = {kernel.gsd(p.partition_id).metagroup.view.view_id for p in kernel.cluster.partitions}
    assert views == {1}


def test_quiet_cluster_has_no_false_detections(kernel, sim):
    sim.run(until=300.0)
    assert sim.trace.records("failure.detected") == []
    assert sim.trace.records("recovery.failed") == []


def test_heartbeats_flow(kernel, sim):
    sim.run(until=65.0)
    assert sim.trace.counter("wd.beats") > 0
    assert sim.trace.counter("gsd.ring_beats") > 0
    assert sim.trace.counter("gsd.wd_beats_seen") > 0


def test_double_boot_rejected(kernel):
    with pytest.raises(KernelError):
        kernel.boot()


def test_partition_daemon_accessor_unknown_partition(kernel):
    with pytest.raises(ServiceUnavailable):
        kernel.gsd("p99")


def test_detectors_export_to_bulletin(kernel, sim):
    sim.run(until=20.0)
    db = kernel.bulletin("p0")
    rows = db.store.query("node_metrics")
    assert len(rows) == 4  # 4 nodes in partition p0
    sample = rows[0]
    assert 0 <= sample["cpu_pct"] <= 100
    assert sample["_partition"] == "p0"
