"""Parked-minority journal (DESIGN.md §16 satellite): crash while parked.

A parked GSD defers ``gsd.state`` commits (DESIGN.md §15) but keeps its
local belief.  Before this journal existed, a crash while parked lost
that deferred state: the restarted GSD reloaded the *pre-park* checkpoint
and the heal committed stale membership.  Now every deferred
``_set_node_state`` is journaled to the node's local stable store
(node-local disk survives process death and node reboot), and
``_load_state`` replays it — so the post-heal commit carries the change
observed while parked.
"""

from repro.cluster import Cluster, ClusterSpec, FaultInjector
from repro.kernel import KernelTimings, PhoenixKernel
from repro.sim import Simulator
from tests.kernel.test_quorum_regroup import HB, heal_all, sides, split_all


def _park_minority_with_deferred_change():
    """Split 4 partitions 2-vs-2, park p3, kill p3c0 so the parked GSD
    defers a node-state commit.  Returns (sim, cluster, kernel, injector)."""
    sim = Simulator(seed=5)
    cluster = Cluster(sim, ClusterSpec.build(partitions=4, computes=2))
    kernel = PhoenixKernel(cluster, timings=KernelTimings(heartbeat_interval=HB))
    kernel.boot()
    injector = FaultInjector(cluster)
    sim.run(until=20.001)
    split_all(cluster, injector, *sides(cluster))
    sim.run(until=sim.now + 10 * HB)
    assert kernel.gsd("p3").metagroup.parked
    injector.crash_node("p3c0")
    sim.run(until=sim.now + 6 * HB)
    assert sim.trace.records("regroup.write_refused", kind="node_state")
    assert kernel.gsd("p3").node_state["p3c0"] == "down"
    return sim, cluster, kernel, injector


def test_deferred_commits_are_journaled_to_local_stable_store():
    sim, cluster, kernel, injector = _park_minority_with_deferred_change()
    journal = cluster.hostos("p3s0").stable_read("gsd.journal.p3")
    assert journal is not None
    assert journal["node_state"]["p3c0"] == "down"


def test_crash_while_parked_replays_journal_and_commits_after_heal():
    """The regression: GSD process dies mid-park, restarts on the same
    node, replays the journal, stays deferred (still a minority), and the
    deferred state reaches the shared checkpoint only after the heal."""
    sim, cluster, kernel, injector = _park_minority_with_deferred_change()

    # Process death while parked; supervised restart on the same node.
    injector.kill_process("p3s0", "gsd")
    sim.run(until=sim.now + 1.0)
    kernel.start_service("gsd", "p3s0")
    sim.run(until=sim.now + 6 * HB)
    replays = sim.trace.records("gsd.journal_replayed", node="p3s0")
    assert replays and replays[0]["entries"] >= 1
    # The replayed belief is live again, but still not committed: the
    # restarted GSD is still on the minority side.
    assert kernel.gsd("p3").node_state["p3c0"] == "down"
    ckpt = kernel._partition_daemon("ckpt", "p3")
    entry = ckpt.store.load("gsd.state.p3")
    committed = entry.data["node_state"].get("p3c0") if entry else None
    assert committed != "down", "minority must not commit while split"

    # Heal: quorum returns, the journal flushes into the shared commit,
    # and the journal itself is cleared (the commit supersedes it).
    heal_all(cluster, injector)
    sim.run(until=sim.now + 15 * HB)
    assert not kernel.gsd("p3").metagroup.parked
    entry = ckpt.store.load("gsd.state.p3")
    assert entry is not None and entry.data["node_state"]["p3c0"] == "down"
    assert cluster.hostos("p3s0").stable_read("gsd.journal.p3") is None


def test_journal_cleared_by_ordinary_commit():
    """Without a crash, the unpark flush both commits and deletes the
    journal — no stale replay on a later restart."""
    sim, cluster, kernel, injector = _park_minority_with_deferred_change()
    heal_all(cluster, injector)
    sim.run(until=sim.now + 15 * HB)
    assert not kernel.gsd("p3").metagroup.parked
    ckpt = kernel._partition_daemon("ckpt", "p3")
    entry = ckpt.store.load("gsd.state.p3")
    assert entry is not None and entry.data["node_state"]["p3c0"] == "down"
    assert cluster.hostos("p3s0").stable_read("gsd.journal.p3") is None
