"""Materialized views: subtractable accumulators, rows(), view_report (pure)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.bulletin.query import Agg, Query, execute
from repro.kernel.bulletin.views import MaterializedView, view_report

GROUPED = Query(
    table="nodes",
    group_by=("state",),
    aggs=(
        Agg("count", "*", "n"),
        Agg("count", "cpu", "n_cpu"),
        Agg("sum", "cpu", "s"),
        Agg("avg", "cpu", "a"),
        Agg("min", "cpu", "lo"),
        Agg("max", "cpu", "hi"),
    ),
    order_by=(("n", True),),
)


def _close(a, b):
    if isinstance(a, float) and isinstance(b, float):
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
    return a == b


def rows_close(got, want):
    """Row-list equality with float tolerance for accumulator drift."""
    if len(got) != len(want):
        return False
    return all(
        set(ra) == set(rb) and all(_close(ra[k], rb[k]) for k in ra)
        for ra, rb in zip(got, want)
    )


def test_incremental_matches_rebuild_on_simple_sequence():
    view = MaterializedView("v", GROUPED)
    current = {}
    ops = [
        ("k1", {"state": "up", "cpu": 10.0}),
        ("k2", {"state": "up", "cpu": 30.0}),
        ("k3", {"state": "down", "cpu": None}),
        ("k1", {"state": "up", "cpu": 20.0}),   # update in place
        ("k2", {"state": "down", "cpu": 30.0}),  # group migration
        ("k3", None),                            # delete
    ]
    for key, row in ops:
        view.apply(key, current.get(key), row)
        current[key] = row
        if row is None:
            del current[key]
        assert rows_close(view.rows(), execute(GROUPED, list(current.values())))


def test_extremum_removal_recomputes_from_members():
    q = Query(table="nodes", aggs=(Agg("min", "cpu", "lo"), Agg("max", "cpu", "hi")))
    view = MaterializedView("v", q)
    view.apply("a", None, {"cpu": 1.0})
    view.apply("b", None, {"cpu": 9.0})
    view.apply("c", None, {"cpu": 5.0})
    assert view.rows() == [{"lo": 1.0, "hi": 9.0}]
    view.apply("b", {"cpu": 9.0}, None)  # remove current max
    view.apply("a", {"cpu": 1.0}, None)  # remove current min
    assert view.rows() == [{"lo": 5.0, "hi": 5.0}]
    view.apply("c", {"cpu": 5.0}, None)
    assert view.rows() == []


def test_plain_select_view_mirrors_rows():
    q = Query(table="nodes", where={"state": "up"}, select=("_key", "cpu"),
              order_by=(("cpu", True),), limit=2)
    view = MaterializedView("v", q)
    rows = {
        "a": {"_key": "a", "state": "up", "cpu": 3.0},
        "b": {"_key": "b", "state": "down", "cpu": 9.0},
        "c": {"_key": "c", "state": "up", "cpu": 7.0},
    }
    for key, row in rows.items():
        view.apply(key, None, row)
    assert view.rows() == execute(q, list(rows.values()))
    assert view.rows() == [{"_key": "c", "cpu": 7.0}, {"_key": "a", "cpu": 3.0}]


def test_apply_reports_visibility_and_rebuild_counts():
    view = MaterializedView("v", GROUPED)
    assert view.apply("a", None, {"state": "up", "cpu": 1.0})
    # A transition no clause matches is invisible to the view.
    filtered = MaterializedView("f", Query(table="nodes", where={"state": "up"},
                                           select=("_key",)))
    assert not filtered.apply("x", None, {"_key": "x", "state": "down"})
    view.rebuild([{"_key": "a", "state": "up", "cpu": 1.0}])
    assert view.rebuilds == 1
    stats = view.stats(now=10.0)
    assert set(stats) >= {"maintenance_events", "delta_applied", "rebuilds",
                          "resyncs", "cached_rows", "staleness"}
    assert stats["cached_rows"] == 1


def test_view_report_shapes_and_totals():
    listing = {
        "p0": {
            "partition": "p0",
            "views": [{
                "name": "v",
                "query": {"table": "nodes"},
                "stats": {"maintenance_events": 3, "delta_applied": 2,
                          "rebuilds": 1, "resyncs": 0, "staleness": 0.5},
            }],
        },
        "p1": None,  # unreachable instance is skipped, not fatal
    }
    report = view_report(listing)
    assert report["views"]["v"]["owner"] == "p0"
    assert report["views"]["v"]["staleness"] == 0.5
    assert report["totals"]["maintenance_events"] == 3
    assert report["totals"]["rebuilds"] == 1


# -- property: incremental maintenance == from-scratch execution -------------
_KEYS = ("k0", "k1", "k2", "k3", "k4")
_STATES = ("up", "down", "draining")

_op = st.tuples(
    st.sampled_from(_KEYS),
    st.one_of(
        st.none(),  # delete
        st.fixed_dictionaries({
            "state": st.sampled_from(_STATES),
            "cpu": st.one_of(st.none(), st.integers(-50, 50).map(float)),
        }),
    ),
)


@settings(max_examples=200, deadline=None)
@given(st.lists(_op, min_size=1, max_size=40))
def test_property_view_equals_fresh_execution(ops):
    view = MaterializedView("v", GROUPED)
    current = {}
    for key, row in ops:
        old = current.get(key)
        if row is None and old is None:
            continue
        view.apply(key, old, row)
        if row is None:
            del current[key]
        else:
            current[key] = row
    assert rows_close(view.rows(), execute(GROUPED, list(current.values())))
