"""Event service: filtering, federation, state checkpoint + recovery."""

from repro.kernel import ports
from repro.kernel.events import types as ev
from repro.kernel.events.filters import Subscription
from repro.kernel.events.types import Event
from tests.kernel.conftest import drive


def make_event(**over):
    base = dict(
        event_id="e1", type=ev.NODE_FAILURE, source="p0s0", partition="p0",
        time=1.0, data={"node": "p0c0"},
    )
    base.update(over)
    return Event(**base)


# -- subscription filter unit tests -----------------------------------------


def test_subscription_matches_type_and_where():
    sub = Subscription("c1", "n", "p", types=(ev.NODE_FAILURE,), where={"node": "p0c0"})
    assert sub.matches(make_event())
    assert not sub.matches(make_event(type=ev.NODE_RECOVERY))
    assert not sub.matches(make_event(data={"node": "other"}))
    assert not sub.matches(make_event(data={}))


def test_subscription_empty_types_means_all():
    sub = Subscription("c1", "n", "p", types=())
    assert sub.matches(make_event())
    assert sub.matches(make_event(type=ev.APP_STARTED))


def test_subscription_payload_roundtrip():
    sub = Subscription("c1", "n", "p", types=(ev.APP_EXITED,), where={"job_id": "j1"})
    assert Subscription.from_payload(sub.to_payload()) == sub


def test_event_payload_roundtrip():
    event = make_event()
    assert Event.from_payload(event.to_payload()) == event


# -- integration helpers ------------------------------------------------------


def subscribe_collector(kernel, sim, node, consumer_id, types=(), where=None, partition=None):
    """Register a consumer and return the list its events land in."""
    inbox = []
    port = f"sink.{consumer_id}"
    kernel.cluster.transport.bind(
        node, port, lambda msg: inbox.append(Event.from_payload(msg.payload["event"]))
    )
    reply = drive(sim, kernel.client(node).subscribe(
        consumer_id, port, types=types, where=where, partition=partition))
    assert reply and reply["ok"]
    return inbox


def publish(kernel, sim, node, event_type, data, partition=None):
    reply = drive(sim, kernel.client(node).publish(event_type, data, partition=partition))
    assert reply and reply["ok"]


# -- integration tests -------------------------------------------------------


def test_publish_reaches_matching_local_consumer(kernel, sim):
    inbox = subscribe_collector(kernel, sim, "p0c0", "c1", types=(ev.NODE_FAILURE,))
    publish(kernel, sim, "p0c1", ev.NODE_FAILURE, {"node": "x"})
    sim.run(until=sim.now + 0.5)
    assert len(inbox) == 1
    assert inbox[0].type == ev.NODE_FAILURE
    assert inbox[0].data == {"node": "x"}


def test_type_filtering(kernel, sim):
    inbox = subscribe_collector(kernel, sim, "p0c0", "c1", types=(ev.APP_STARTED,))
    publish(kernel, sim, "p0c1", ev.NODE_FAILURE, {})
    sim.run(until=sim.now + 0.5)
    assert inbox == []


def test_where_filtering(kernel, sim):
    inbox = subscribe_collector(
        kernel, sim, "p0c0", "c1", types=(ev.NODE_FAILURE,), where={"node": "wanted"})
    publish(kernel, sim, "p0c1", ev.NODE_FAILURE, {"node": "other"})
    publish(kernel, sim, "p0c1", ev.NODE_FAILURE, {"node": "wanted"})
    sim.run(until=sim.now + 0.5)
    assert [e.data["node"] for e in inbox] == ["wanted"]


def test_federation_forwards_across_partitions(kernel, sim):
    """An event published in p2 reaches a consumer registered at p0's ES."""
    inbox = subscribe_collector(kernel, sim, "p0c0", "c1", types=(ev.NODE_FAILURE,), partition="p0")
    publish(kernel, sim, "p2c1", ev.NODE_FAILURE, {"node": "y"}, partition="p2")
    sim.run(until=sim.now + 0.5)
    assert len(inbox) == 1
    assert inbox[0].partition == "p2"


def test_unsubscribe_stops_delivery(kernel, sim):
    inbox = subscribe_collector(kernel, sim, "p0c0", "c1")
    reply = drive(sim, kernel.client("p0c0").unsubscribe("c1"))
    assert reply["ok"]
    publish(kernel, sim, "p0c1", ev.NODE_FAILURE, {})
    sim.run(until=sim.now + 0.5)
    assert inbox == []


def test_unsubscribe_unknown_consumer(kernel, sim):
    reply = drive(sim, kernel.client("p0c0").unsubscribe("ghost"))
    assert reply == {"ok": False}


def test_event_ids_unique_and_ordered(kernel, sim):
    inbox = subscribe_collector(kernel, sim, "p0c0", "c1")
    for i in range(5):
        publish(kernel, sim, "p0c1", ev.NODE_FAILURE, {"i": i})
    sim.run(until=sim.now + 0.5)
    ids = [e.event_id for e in inbox]
    assert len(set(ids)) == 5
    assert [e.data["i"] for e in inbox] == list(range(5))


def test_subscriptions_survive_es_restart_via_checkpoint(kernel, sim, injector):
    """Figure 4: recovered ES retrieves its state from the checkpoint service."""
    inbox = subscribe_collector(kernel, sim, "p0c0", "c1", types=(ev.NODE_FAILURE,))
    sim.run(until=sim.now + 1.0)  # let the subscription checkpoint land
    es_node = kernel.placement[("es", "p0")]
    injector.kill_process(es_node, "es")
    fresh = kernel.start_service("es", es_node)
    sim.run(until=sim.now + 1.0)
    assert [s.consumer_id for s in fresh.subscriptions()] == ["c1"]
    assert sim.trace.records("es.state_recovered")
    publish(kernel, sim, "p0c1", ev.NODE_FAILURE, {"node": "after-restart"})
    sim.run(until=sim.now + 0.5)
    assert [e.data["node"] for e in inbox] == ["after-restart"]


def test_delivery_counters(kernel, sim):
    subscribe_collector(kernel, sim, "p0c0", "c1")
    publish(kernel, sim, "p0c1", ev.NODE_FAILURE, {})
    sim.run(until=sim.now + 0.5)
    assert sim.trace.counter("es.published") >= 1
    assert sim.trace.counter("es.delivered") >= 1


# -- per-consumer delivery SLO (engine fast-path PR) --------------------------


def test_per_consumer_slo_histograms_off_by_default(kernel, sim):
    subscribe_collector(kernel, sim, "p0c0", "c1", types=(ev.NODE_FAILURE,))
    publish(kernel, sim, "p0c1", ev.NODE_FAILURE, {"node": "x"})
    sim.run(until=sim.now + 0.5)
    assert sim.trace.histograms("es.deliver.to.") == {}


def test_per_consumer_slo_histograms_and_health_snapshot(sim):
    from repro.cluster import Cluster, ClusterSpec
    from repro.kernel import KernelTimings, PhoenixKernel

    cluster = Cluster(sim, ClusterSpec.build(partitions=1, computes=2))
    kernel = PhoenixKernel(cluster, timings=KernelTimings(es_deliver_slo=0.05))
    kernel.boot()
    sim.run(until=1.0)
    inbox = subscribe_collector(kernel, sim, "p0c0", "c1", types=(ev.NODE_FAILURE,))
    publish(kernel, sim, "p0c1", ev.NODE_FAILURE, {"node": "x"})
    sim.run(until=sim.now + 0.5)
    assert len(inbox) == 1
    hists = sim.trace.histograms("es.deliver.to.")
    assert list(hists) == ["es.deliver.to.c1"]
    assert hists["es.deliver.to.c1"].count == 1
    # The ES health snapshot carries the per-consumer tail for alerts().
    row = kernel.es("p0").health_snapshot()
    assert "es.deliver.to.c1" in row["hist"]
    assert row["hist"]["es.deliver.to.c1"]["count"] == 1
