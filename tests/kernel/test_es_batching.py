"""Batched ES federation: coalescing, ordering, equivalence with the
naive per-event forward, and outbox survival across faults."""

import random

from repro.cluster import Cluster, ClusterSpec, FaultInjector
from repro.kernel import KernelTimings, PhoenixKernel
from repro.kernel.events.filters import Subscription
from repro.kernel.events.types import Event
from repro.sim import Simulator
from repro.userenv.monitoring import messaging_report
from tests.kernel.conftest import drive
from tests.kernel.test_events import publish, subscribe_collector

FORWARD_COUNTERS = (
    "es.forward_batches",
    "es.forward_batched_events",
    "es.forward_requeued",
    "es.forward_duplicates",
)


def forward_counters(sim):
    return {name: sim.trace.counter(name) for name in FORWARD_COUNTERS}


def assert_monotone(before, after):
    for name, value in before.items():
        assert after[name] >= value, f"{name} went backwards: {value} -> {after[name]}"


# -- coalescing ---------------------------------------------------------------


def test_publish_burst_coalesces_into_few_batches(kernel, sim):
    """A burst inside one flush window crosses each partition boundary in
    one datagram, not one per event — and arrives complete, in order."""
    inbox = subscribe_collector(kernel, sim, "p1c0", "c1", types=("custom.*",), partition="p1")
    before = forward_counters(sim)
    for i in range(8):
        publish(kernel, sim, "p0c0", "custom.tick", {"i": i}, partition="p0")
    sim.run(until=sim.now + 2.0)
    after = forward_counters(sim)
    assert_monotone(before, after)
    assert [e.data["i"] for e in inbox] == list(range(8))
    batches = after["es.forward_batches"] - before["es.forward_batches"]
    events = after["es.forward_batched_events"] - before["es.forward_batched_events"]
    assert events == 16  # 8 events x 2 remote partitions
    assert batches < events  # the tentpole: fewer datagrams than forwards
    assert after["es.forward_duplicates"] == before["es.forward_duplicates"]


def test_batch_size_cap_spills_overflow_to_next_window():
    sim = Simulator(seed=11)
    cluster = Cluster(sim, ClusterSpec.build(partitions=2, computes=2))
    kernel = PhoenixKernel(
        cluster,
        timings=KernelTimings(heartbeat_interval=30.0, es_forward_batch_max=3),
    )
    kernel.boot()
    sim.run(until=1.0)
    inbox = subscribe_collector(kernel, sim, "p1c0", "c1", types=("custom.*",), partition="p1")
    for i in range(7):
        publish(kernel, sim, "p0c0", "custom.tick", {"i": i}, partition="p0")
    sim.run(until=sim.now + 2.0)
    assert [e.data["i"] for e in inbox] == list(range(7))
    # 7 events over a cap of 3 needs at least ceil(7/3) = 3 batches.
    assert sim.trace.counter("es.forward_batches") >= 3


def test_admin_stop_drains_outbox(kernel, sim):
    """An administrative stop mid-window must not strand accepted events:
    the dying instance flushes its outbox on the way down."""
    inbox = subscribe_collector(kernel, sim, "p1c0", "c1", types=("custom.*",), partition="p1")
    sim.run(until=sim.now + 0.5)
    es = kernel.live_daemon("es", kernel.placement[("es", "p0")])
    publish(kernel, sim, "p0c0", "custom.tick", {"i": 1}, partition="p0")
    assert es.outbox_depth() > 0  # publish acked before the flush window
    es.stop()
    sim.run(until=sim.now + 1.0)
    assert [e.data["i"] for e in inbox] == [1]


# -- randomized equivalence with a naive unbatched full-scan reference --------


def test_randomized_stream_matches_naive_reference(kernel, sim):
    """Property check over the whole delivery pipeline: for a seeded
    stream of subscribes/unsubscribes and publish bursts with mixed
    ``where`` clauses, the batched + where-key-indexed implementation
    delivers exactly the (consumer, event_id) sequence predicted by a
    naive reference that forwards nothing and full-scans every
    subscription with ``Subscription.matches`` per event."""
    rng = random.Random(31)
    parts = {"p0": "p0c0", "p1": "p1c0", "p2": "p2c0"}
    type_pool = ["node.failure", "node.recovery", "app.started", "custom.tick"]
    node_pool = ["p0c0", "p1c1", "p2c0", "elsewhere"]

    def rand_where():
        roll = rng.random()
        if roll < 0.30:
            return {}
        if roll < 0.55:
            return {"node": rng.choice(node_pool)}
        if roll < 0.70:
            return {"node": {"op": "==", "value": rng.choice(node_pool)}}
        if roll < 0.85:
            return {"k": {"op": ">=", "value": rng.randint(0, 2)}}
        return {"node": rng.choice(node_pool), "k": rng.randint(0, 3)}

    def rand_types():
        return tuple(rng.sample(type_pool, rng.randint(0, 2)))

    def rand_data():
        data = {}
        if rng.random() < 0.8:
            data["node"] = rng.choice(node_pool)
        if rng.random() < 0.8:
            data["k"] = rng.randint(0, 3)
        return data

    # The naive reference: per ES instance, the registry in registration
    # order (dict insertion order mirrors SubscriptionIndex slots).
    reference = {p: {} for p in parts}
    inboxes, homes, expected = {}, {}, {}

    def subscribe(cid):
        part = homes.setdefault(cid, rng.choice(sorted(parts)))
        node, port = parts[part], f"sink.{cid}"
        if cid not in inboxes:
            inboxes[cid] = []
            expected[cid] = []
            kernel.cluster.transport.bind(
                node, port,
                lambda msg, cid=cid: inboxes[cid].append(Event.from_payload(msg.payload["event"])),
            )
        types, where = rand_types(), rand_where()
        reply = drive(sim, kernel.client(node).subscribe(
            cid, port, types=types, where=where, partition=part))
        assert reply and reply["ok"]
        reference[part][cid] = Subscription(cid, node, port, types=types, where=where)

    def unsubscribe(cid):
        part = homes[cid]
        drive(sim, kernel.client(parts[part]).unsubscribe(cid, partition=part))
        reference[part].pop(cid, None)

    for i in range(9):
        subscribe(f"c{i}")

    for burst in range(12):
        src_part = rng.choice(sorted(parts))
        src_node = parts[src_part]
        for _ in range(rng.randint(2, 5)):
            etype, data = rng.choice(type_pool), rand_data()
            reply = drive(sim, kernel.client(src_node).publish(
                etype, data, partition=src_part))
            assert reply and reply["ok"]
            event = Event(event_id=reply["event_id"], type=etype, source=src_node,
                          partition=src_part, time=sim.now, data=data)
            for registry in reference.values():
                for sub in registry.values():  # naive full scan, every instance
                    if sub.matches(event):
                        expected[sub.consumer_id].append(event.event_id)
        sim.run(until=sim.now + 2.0)  # batches flushed, deliveries settled
        roll = rng.random()
        if roll < 0.3:
            unsubscribe(rng.choice(sorted(homes)))
        elif roll < 0.6:
            subscribe(rng.choice([f"c{rng.randint(0, 8)}", f"c{9 + burst}"]))

    assert sum(len(seq) for seq in expected.values()) > 30  # stream not vacuous
    for cid, inbox in inboxes.items():
        got = [e.event_id for e in inbox]
        assert got == expected[cid], f"divergence for {cid}"
    # And the transport actually batched: more events forwarded than datagrams.
    assert (sim.trace.counter("es.forward_batches")
            < sim.trace.counter("es.forward_batched_events"))


# -- fault injection: outbox survives sender restart + peer migration --------


def test_outbox_survives_es_kill_and_peer_server_crash():
    """Mid-batch-window double fault: the peer partition's server dies
    (batch unacked -> requeued + checkpointed), then the *sender* ES is
    killed with the outbox stranded.  The restarted sender recovers the
    outbox from its checkpoint and the flush re-delivers once the peer's
    ES has migrated to the backup node — no accepted event is lost and no
    forward counter goes backwards."""
    sim = Simulator(seed=13)
    cluster = Cluster(sim, ClusterSpec.build(partitions=3, computes=2))
    kernel = PhoenixKernel(cluster, timings=KernelTimings(heartbeat_interval=5.0))
    kernel.boot()
    injector = FaultInjector(cluster)
    sim.run(until=6.0)

    inbox = subscribe_collector(kernel, sim, "p1c0", "c1", types=("custom.*",), partition="p1")
    sim.run(until=sim.now + 1.0)  # subscription checkpoint lands in p1's store

    samples = [forward_counters(sim)]
    injector.crash_node("p1s0")  # peer partition's server (hosts p1's ES)
    for i in range(6):
        publish(kernel, sim, "p0c0", "custom.tick", {"i": i}, partition="p0")
    sim.run(until=sim.now + 3.0)  # batch to p1 fails, requeues, checkpoints
    samples.append(forward_counters(sim))
    assert sim.trace.counter("es.forward_requeued") > 0
    sender = kernel.live_daemon("es", kernel.placement[("es", "p0")])
    assert sender.outbox_depth() >= 6

    t_kill = sim.now
    injector.kill_process("p0s0", "es")  # sender dies with the outbox stranded
    sim.run(until=sim.now + 40.0)  # GSD restarts sender; peer ES migrates
    samples.append(forward_counters(sim))

    recovered = [r for r in sim.trace.records("es.state_recovered") if r.time > t_kill]
    assert any(r["outbox"] >= 6 for r in recovered)  # flush-on-recovery reloaded it
    assert kernel.placement[("es", "p1")] == "p1b0"  # peer migrated to backup
    assert [e.data["i"] for e in inbox] == list(range(6))  # delivered once, in order
    for before, after in zip(samples, samples[1:]):
        assert_monotone(before, after)


# -- outbox high-water mark ---------------------------------------------------


def test_outbox_high_water_mark_drops_oldest_on_peer_outage():
    """A wedged peer must not grow the sender's outbox (and therefore its
    checkpoint payload) without bound: past ``es_outbox_max`` the oldest
    queued forwards are dropped, traced, and counted."""
    sim = Simulator(seed=11)
    cluster = Cluster(sim, ClusterSpec.build(partitions=2, computes=2))
    kernel = PhoenixKernel(
        cluster,
        # A huge heartbeat interval keeps the GSD from recovering the peer
        # within the test window — the outage stays in effect throughout.
        timings=KernelTimings(heartbeat_interval=120.0, es_outbox_max=4),
    )
    kernel.boot()
    injector = FaultInjector(cluster)
    sim.run(until=1.0)

    injector.crash_node("p1s0")  # peer partition's ES is now unreachable
    for i in range(12):
        publish(kernel, sim, "p0c0", "custom.tick", {"i": i}, partition="p0")
    sim.run(until=sim.now + 10.0)

    dropped = sim.trace.counter("es.outbox_dropped")
    assert dropped >= 1
    marks = sim.trace.records("es.outbox_overflow", node="p0s0", peer="p1")
    assert marks and all(r["depth"] <= 4 for r in marks)
    sender = kernel.live_daemon("es", kernel.placement[("es", "p0")])
    pending = sender._outbox["p1"]
    assert len(pending) <= 4  # bounded at the cap despite 12 publishes
    # Drop-oldest: what remains queued is a newest-first suffix, in order.
    kept = [p["data"]["i"] for p in pending]
    assert kept == sorted(kept)
    report = messaging_report(sim.trace)
    assert report["es"]["outbox_dropped"] == dropped


def test_indexed_where_keys_configurable_via_timings():
    """Deployments whose hot equality ``where`` key is not ``node`` can
    point the subscription index elsewhere via KernelTimings."""
    sim = Simulator(seed=11)
    cluster = Cluster(sim, ClusterSpec.build(partitions=2, computes=2))
    kernel = PhoenixKernel(
        cluster,
        timings=KernelTimings(es_indexed_where_keys=("node", "severity")),
    )
    kernel.boot()
    sim.run(until=1.0)
    es = kernel.live_daemon("es", kernel.placement[("es", "p0")])
    assert es._subs._where_keys == ("node", "severity")

    inbox = []
    cluster.transport.bind(
        "p0c0", "sink", lambda m: inbox.append(Event.from_payload(m.payload["event"])))
    reply = drive(sim, kernel.client("p0c0").subscribe(
        "c1", "sink", types=("custom.*",), where={"severity": "high"}, partition="p0"))
    assert reply and reply["ok"]
    # The custom key landed in an indexed equality slot...
    assert any(es._subs._eq["severity"].values())
    # ...and filtering through it still delivers exactly the matches.
    publish(kernel, sim, "p0c1", "custom.alert", {"severity": "low"}, partition="p0")
    publish(kernel, sim, "p0c1", "custom.alert", {"severity": "high"}, partition="p0")
    sim.run(until=sim.now + 1.0)
    assert [e.data["severity"] for e in inbox] == ["high"]
