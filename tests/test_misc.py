"""Misc coverage batch: errors hierarchy, message sizes, determinism."""

import pytest

from repro import errors
from repro.cluster.message import HEADER_BYTES, Message, estimate_size


def test_error_hierarchy_roots():
    """Everything the library raises derives from ReproError."""
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception) and obj is not errors.ReproError:
            assert issubclass(obj, errors.ReproError), name


def test_specific_parentage():
    assert issubclass(errors.NodeDown, errors.ClusterError)
    assert issubclass(errors.MembershipError, errors.KernelError)
    assert issubclass(errors.SchedulingError, errors.UserEnvError)
    assert issubclass(errors.ProcessKilled, errors.SimulationError)


def test_message_size_model():
    assert estimate_size({}) == HEADER_BYTES + 2
    small = Message("a", "b", "p", "t", payload={"x": 1})
    big = Message("a", "b", "p", "t", payload={"x": "y" * 500})
    assert big.size > small.size + 400
    explicit = Message("a", "b", "p", "t", payload={}, size=999)
    assert explicit.size == 999


def test_message_size_deterministic():
    a = Message("a", "b", "p", "t", payload={"k": [1, 2, 3]})
    b = Message("a", "b", "p", "t", payload={"k": [1, 2, 3]})
    assert a.size == b.size


def test_full_boot_is_bit_for_bit_deterministic():
    """Two identical runs produce identical traces and counters — the
    property every experiment in this repository rests on."""
    from repro.cluster import Cluster, ClusterSpec, FaultInjector
    from repro.kernel import KernelTimings, PhoenixKernel
    from repro.sim import Simulator

    def run():
        sim = Simulator(seed=99)
        cluster = Cluster(sim, ClusterSpec.build(partitions=3, computes=4))
        kernel = PhoenixKernel(cluster, timings=KernelTimings(heartbeat_interval=10.0))
        kernel.boot()
        injector = FaultInjector(cluster)
        injector.at(20.001, "crash_node", "p1c1")
        injector.at(35.0, "kill_process", "p2s0", "es")
        sim.run(until=120.0)
        records = [(r.time, r.category, tuple(sorted(r.fields.items()))) for r in
                   sim.trace.records()]
        return records, sim.trace.counters(), sim.events_executed

    first = run()
    second = run()
    assert first[0] == second[0]
    assert first[1] == second[1]
    assert first[2] == second[2]


def test_console_accounting_rendering():
    from repro.userenv.pws.console import render_accounting

    assert "(no usage yet)" in render_accounting({"users": {}})
    text = render_accounting({"users": {
        "alice": {"jobs": 3, "done": 2, "failed": 1, "cpu_seconds": 7200.0},
    }})
    assert "alice" in text and "2.000" in text
