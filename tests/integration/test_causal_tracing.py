"""The causal tracing spine, end to end.

A server-node failover must decompose into a causally linked span tree
(detection -> diagnosis -> recovery under one ``gsd.failover`` root),
and the kernel health endpoint must expose the spine latency quantiles
through bulletin-published ``kernel.health`` self-reports — the two
acceptance checks for the observability spine.
"""

from repro.cluster import Cluster, ClusterSpec, FaultInjector
from repro.kernel import KernelTimings, PhoenixKernel
from repro.kernel.daemon import HEALTH_TABLE
from repro.userenv.monitoring import critical_path, health_report, span_tree
from tests.kernel.conftest import drive
from tests.kernel.test_events import publish, subscribe_collector

INTERVAL = 5.0


def build():
    from repro.sim import Simulator

    sim = Simulator(seed=7)
    cluster = Cluster(sim, ClusterSpec.build(partitions=3, computes=2))
    kernel = PhoenixKernel(
        cluster,
        timings=KernelTimings(
            heartbeat_interval=INTERVAL, health_report_interval=INTERVAL
        ),
    )
    kernel.boot()
    sim.run(until=1.0)
    return sim, cluster, kernel


def test_failover_produces_causal_span_tree_and_health_quantiles():
    sim, cluster, kernel = build()
    injector = FaultInjector(cluster)

    # Some cross-partition event traffic so rpc.call / es.deliver have
    # observations for the health quantiles.
    inbox = subscribe_collector(kernel, sim, "p0c0", "c1", types=("custom.*",), partition="p0")
    for i in range(4):
        publish(kernel, sim, "p2c0", "custom.tick", {"i": i}, partition="p2")
    sim.run(until=sim.now + 2.0)
    assert [e.data["i"] for e in inbox] == list(range(4))

    # Kill a member server: the meta-group leader detects the miss,
    # diagnoses node death, and migrates the co-located services.
    t0 = sim.now
    injector.crash_node("p1s0")
    sim.run(until=sim.now + 6 * INTERVAL)
    assert kernel.placement[("gsd", "p1")] == "p1b0"

    # -- span tree: one failover root, causally linked children ---------------
    tree = span_tree(sim.trace)
    roots = [
        sid for sid in tree["roots"]
        if tree["spans"][sid].category == "gsd.failover" and tree["spans"][sid].time > t0
    ]
    assert roots, "no closed gsd.failover root span"
    root = tree["spans"][roots[0]]
    assert root["ok"] is True and root["kind"] == "node"
    kids = [tree["spans"][sid] for sid in tree["children"][root["span_id"]]]
    kid_categories = [r.category for r in kids]
    assert "gsd.diagnose" in kid_categories
    assert "gsd.recover" in kid_categories
    for rec in kids:
        assert rec["parent_id"] == root["span_id"]
        assert rec["start"] >= root["start"]
        if rec.category.startswith("gsd."):
            # Synchronous steps nest inside the parent's interval (the
            # recovery event's es.publish child may close just after).
            assert rec.time <= root.time
    recover = next(r for r in kids if r.category == "gsd.recover")
    assert recover["action"] == "migrate" and recover["dst"] == "p1b0"

    # Detection is correlated to the same trace: the failure.detected mark
    # carries the root's span id.
    detected = [r for r in sim.trace.records("failure.detected") if r.time > t0]
    assert any(r.get("span_id") == root["span_id"] for r in detected)

    # -- critical path: detection -> diagnosis -> recovery, linked ------------
    path = critical_path(sim.trace)
    assert path[0]["span_id"] == root["span_id"]
    assert len(path) >= 2
    for parent, child in zip(path, path[1:]):
        assert child["parent_id"] == parent["span_id"]
    # The failover is gated by its recovery step, and the step durations
    # are consistent with the root's.
    assert path[1].category in ("gsd.recover", "gsd.diagnose")
    assert all(r["duration"] <= root["duration"] for r in path[1:])

    # -- kernel health endpoint -----------------------------------------------
    # Let a reporting period elapse post-recovery, then read the bulletin.
    sim.run(until=sim.now + 2 * INTERVAL)
    reply = drive(
        sim, kernel.client("p0c0").query_bulletin(HEALTH_TABLE), max_time=sim.now + 10.0
    )
    assert reply and not reply["partitions_missing"]
    rows = reply["rows"]
    assert rows, "no kernel.health self-reports published"

    report = health_report(rows, now=sim.now, stale_after=3 * INTERVAL)
    for name in ("rpc.call", "es.deliver"):
        summary = report["latency"][name]
        assert summary["count"] > 0
        assert summary["p95"] >= summary["p50"] > 0.0
        assert summary["p99"] >= summary["p95"]
    # The failover itself surfaced through the published self-reports.
    assert report["latency"]["gsd.failover"]["count"] >= 1
    # Live daemons are fresh; the crashed node's daemons are stale or
    # evicted, never reported as current.
    assert report["services"], report
    for name, entry in report["services"].items():
        if name.endswith("@p1s0"):
            assert name in report["stale"] or entry["reported_at"] <= t0 + INTERVAL
        elif name not in report["stale"]:
            assert entry["age_s"] <= 3 * INTERVAL


def test_health_reports_are_off_by_default():
    """health_report_interval=None (the default) publishes nothing — the
    deterministic benchmark workloads stay byte-identical."""
    from repro.sim import Simulator

    sim = Simulator(seed=7)
    cluster = Cluster(sim, ClusterSpec.build(partitions=2, computes=2))
    kernel = PhoenixKernel(cluster, timings=KernelTimings(heartbeat_interval=INTERVAL))
    kernel.boot()
    sim.run(until=4 * INTERVAL)
    assert sim.trace.counter("health.reports") == 0
    reply = drive(sim, kernel.client("p0c0").query_bulletin(HEALTH_TABLE))
    assert reply and reply["rows"] == []
