"""Chaos + workload: the whole stack under fire.

A PWS job trace and a hosted business application run while the chaos
driver kills daemons, crashes nodes (with later repairs), and fails
NICs.  After a settling window, every job must be in a terminal state,
no CPU may be leaked, the business app must be serving, and the kernel
must be fully healed.
"""

import pytest

from repro.cluster import ClusterSpec, FaultInjector
from repro.kernel import KernelTimings
from repro.sim import Simulator
from repro.userenv.business import BizAppSpec, TierSpec, install_business_runtime
from repro.userenv.construction import ConstructionTool
from repro.userenv.pws import PoolSpec, install_pws
from repro.userenv.pws.server import PORT as PWS_PORT
from repro.userenv.pws.server import STATUS, SUBMIT
from repro.workloads.jobs import TraceConfig, generate_trace
from tests.kernel.test_chaos import chaos_driver

INTERVAL = 10.0
CHAOS_TIME = 500.0


@pytest.mark.parametrize("seed", [5, 6])
def test_full_stack_chaos(seed):
    sim = Simulator(seed=seed, trace_capacity=50_000)
    tool = ConstructionTool(sim)
    kernel = tool.build(
        ClusterSpec.build(partitions=4, computes=4),
        timings=KernelTimings(heartbeat_interval=INTERVAL),
    )
    cluster = kernel.cluster
    sim.run(until=6.0)

    pws = install_pws(kernel, [PoolSpec("all", cluster.compute_nodes())], max_retries=3)
    runtime = install_business_runtime(kernel, partition_id="p2")
    sim.run(until=sim.now + 2.0)
    runtime.deploy(BizAppSpec(name="app", tiers=(TierSpec("web", 3, cpus=1),)))

    # Submit a trace over the first ~6 minutes; clients retry while the
    # scheduler (or their own node) is unavailable, as real users would.
    trace = generate_trace(15, TraceConfig(max_nodes=3, duration_median_s=90.0), seed=seed)
    client_node = "p3c3"

    def submit_with_retry(payload):
        for _ in range(60):
            target = kernel.placement.get(("pws", "p0"))
            reply = yield cluster.transport.rpc(
                client_node, target, PWS_PORT, SUBMIT, payload, timeout=5.0)
            if reply is not None:
                assert reply.get("ok") or "already active" in str(reply.get("error")), reply
                return
            yield 10.0

    for i, entry in enumerate(trace):
        payload = entry.submit_payload(pool="all")
        payload["job_id"] = f"t{i}"
        sim.schedule(
            min(entry.arrival, 350.0),
            lambda p=payload: sim.spawn(submit_with_retry(p), name=f"submit.{p['job_id']}"),
        )

    injector = FaultInjector(cluster)
    rng = sim.rngs.stream("chaos")
    sim.spawn(chaos_driver(sim, cluster, kernel, injector, tool, rng), name="chaos")
    sim.run(until=CHAOS_TIME)
    assert injector.injected

    # Repair sweep, then settle long enough for retries and reconciliation.
    for node_id in sorted(cluster.nodes):
        if not cluster.node(node_id).up:
            tool.recover_node(node_id)
    for network, net in cluster.networks.items():
        for node_id in sorted(cluster.nodes):
            if not net.link_up(node_id):
                injector.restore_nic(node_id, network)
    sim.run(until=sim.now + 600.0)

    # Kernel healed (the detailed invariants live in test_chaos).
    assert tool.health_report()["kernel_healthy"]

    # Every job reached a terminal state; with retries, most completed.
    live = kernel.live_daemon("pws", kernel.placement[("pws", "p0")])
    assert live is not None and live.alive
    states = {j.spec.job_id: j.state.value for j in live.jobs.values()}
    assert len(states) == 15, "some submissions were lost"
    assert all(s in ("done", "failed") for s in states.values()), states
    # Most jobs complete; some may legitimately exhaust their retry budget
    # under sustained chaos — the invariant is terminal state, not success.
    done = sum(1 for s in states.values() if s == "done")
    assert done >= 10, states

    # No leaked CPUs: only the business replicas still hold cores.
    replica_cpus = sum(
        1 for r in runtime.apps["app"].replicas if r.healthy
    )
    busy = sum(cluster.node(n).busy_cpus for n in cluster.nodes)
    assert busy == replica_cpus, (busy, replica_cpus)

    # The business app is serving with full replica count.
    status = runtime.app_status("app")
    assert status["serving"]
    assert status["tiers"]["web"] == 3
