"""Unit tests for fault injection and the synthetic resource model."""

import pytest

from repro.cluster import FaultInjector, LoadProfile, ResourceModel
from repro.errors import ClusterError


@pytest.fixture()
def injector(cluster):
    return FaultInjector(cluster)


def test_kill_process_marks_trace(cluster, sim, injector):
    cluster.hostos("p0c0").start_process("wd")
    fault = injector.kill_process("p0c0", "wd", case="t1")
    assert fault.kind == "process"
    assert not cluster.hostos("p0c0").process_alive("wd")
    rec = sim.trace.first("fault.injected", case="t1")
    assert rec is not None and rec["kind"] == "process" and rec["node"] == "p0c0"


def test_kill_process_requires_running_process(cluster, injector):
    with pytest.raises(ClusterError):
        injector.kill_process("p0c0", "wd")


def test_crash_node(cluster, sim, injector):
    injector.crash_node("p0c0", case="t2")
    assert not cluster.node("p0c0").up
    with pytest.raises(ClusterError):
        injector.crash_node("p0c0")
    injector.boot_node("p0c0")
    assert cluster.node("p0c0").up


def test_fail_and_restore_nic(cluster, injector):
    injector.fail_nic("p0c0", "mgmt", case="t3")
    assert not cluster.networks["mgmt"].link_up("p0c0")
    with pytest.raises(ClusterError):
        injector.fail_nic("p0c0", "mgmt")
    injector.restore_nic("p0c0", "mgmt")
    assert cluster.networks["mgmt"].link_up("p0c0")


def test_fail_nic_unknown_network(injector):
    with pytest.raises(ClusterError):
        injector.fail_nic("p0c0", "nope")


def test_fabric_and_split_and_heal(cluster, injector):
    injector.fail_fabric("ipc")
    assert not cluster.networks["ipc"].fabric_up
    injector.restore_fabric("ipc")
    assert cluster.networks["ipc"].fabric_up
    injector.split_network("mgmt", [{"p0c0"}, {"p0c1"}])
    assert not cluster.networks["mgmt"].path_open("p0c0", "p0c1")
    injector.heal_network("mgmt")
    assert cluster.networks["mgmt"].path_open("p0c0", "p0c1")


def test_scheduled_fault_fires_at_delay(cluster, sim, injector):
    cluster.hostos("p0c0").start_process("wd")
    injector.at(10.0, "kill_process", "p0c0", "wd", case="later")
    sim.run(until=9.9)
    assert cluster.hostos("p0c0").process_alive("wd")
    sim.run(until=10.1)
    assert not cluster.hostos("p0c0").process_alive("wd")
    rec = sim.trace.first("fault.injected", case="later")
    assert rec.time == 10.0


def test_injected_list_accumulates(cluster, injector):
    cluster.hostos("p0c0").start_process("wd")
    injector.kill_process("p0c0", "wd")
    injector.crash_node("p0c1")
    assert [f.kind for f in injector.injected] == ["process", "node"]


# -- correlated fabric-wide degradation ------------------------------------


def test_degrade_fabric_applies_one_profile_to_whole_fabric(cluster, sim, injector):
    fault = injector.degrade_fabric("ipc", loss=0.2, latency_mult=2.0, case="gray")
    assert fault.kind == "degrade_fabric"
    profile = cluster.networks["ipc"].fabric_degradation()
    assert profile is not None
    assert profile.loss == 0.2 and profile.latency_mult == 2.0
    # Other fabrics untouched; per-link profiles unaffected.
    assert cluster.networks["mgmt"].fabric_degradation() is None
    rec = sim.trace.first("fault.injected", case="gray")
    assert rec["kind"] == "degrade_fabric" and rec["target"] == "ipc"
    assert rec["loss"] == 0.2 and rec["latency_mult"] == 2.0


def test_restore_fabric_quality_pairs_repair_mark(cluster, sim, injector):
    injector.degrade_fabric("data", loss=0.1, case="gray2")
    injector.restore_fabric_quality("data", case="gray2")
    assert cluster.networks["data"].fabric_degradation() is None
    injected = sim.trace.first("fault.injected", case="gray2")
    repaired = sim.trace.first("fault.repaired", case="gray2")
    assert injected is not None and repaired is not None
    assert repaired["kind"] == "degrade_fabric"
    assert repaired.time >= injected.time


def test_degrade_fabric_drops_are_counted(cluster, sim, injector):
    net = cluster.networks["ipc"]
    injector.degrade_fabric("ipc", loss=1.0)
    t = cluster.transport
    t.bind("p0c1", "ping", lambda msg: None)
    # loss=1.0 drops at send time; the sender sees it as a silent loss.
    assert not t.send("p0c0", "p0c1", "ping", "hello", {}, network="ipc")
    sim.run(until=sim.now + 1.0)
    assert net.dropped > 0
    assert sim.trace.counter("net.ipc.degraded_drops") > 0


def test_latency_only_profile_delays_but_never_drops(cluster, sim, injector):
    """``loss=0, latency_mult>1`` is pure congestion: zero drops, and
    delivery takes measurably longer than on a clean fabric."""
    t = cluster.transport
    arrivals = []
    t.bind("p0c1", "ping", lambda msg: arrivals.append(sim.now))
    t0 = sim.now
    t.send("p0c0", "p0c1", "ping", "hello", {}, network="ipc")
    sim.run(until=sim.now + 5.0)
    clean_rtt = arrivals[0] - t0
    injector.degrade_fabric("ipc", loss=0.0, latency_mult=8.0)
    t1 = sim.now
    t.send("p0c0", "p0c1", "ping", "hello", {}, network="ipc")
    sim.run(until=sim.now + 5.0)
    assert len(arrivals) == 2
    assert sim.trace.counter("net.ipc.degraded_drops") == 0
    assert arrivals[1] - t1 > clean_rtt  # inflated latency, no loss


def test_degrade_fabric_unknown_network(injector):
    with pytest.raises(ClusterError):
        injector.degrade_fabric("nope", loss=0.5)
    with pytest.raises(ClusterError):
        injector.restore_fabric_quality("nope")


# -- resource model --------------------------------------------------------


def test_idle_metrics_match_common_load_profile(cluster, sim):
    model = cluster.resources
    node = cluster.node("p0c0")
    samples = [model.sample(node) for _ in range(300)]
    cpu = sum(s.cpu_pct for s in samples) / len(samples)
    mem = sum(s.mem_pct for s in samples) / len(samples)
    swap = sum(s.swap_pct for s in samples) / len(samples)
    # Figure 6 'common load': ~5.5% CPU, ~18.6% mem, ~0.72% swap.
    assert 3.0 < cpu < 8.0
    assert 16.0 < mem < 21.0
    assert 0.0 <= swap < 2.0


def test_busy_node_raises_cpu_and_mem(cluster):
    model = cluster.resources
    node = cluster.node("p0c0")
    idle = [model.sample(node).cpu_pct for _ in range(50)]
    node.allocate_cpus(4)
    busy = [model.sample(node).cpu_pct for _ in range(50)]
    assert sum(busy) / 50 > sum(idle) / 50 + 50


def test_metrics_bounded(cluster):
    model = ResourceModel(cluster.sim, profile=LoadProfile.heavy_load(), smoothing=0.0)
    node = cluster.node("p0c0")
    node.allocate_cpus(4)
    for _ in range(200):
        m = model.sample(node)
        assert 0.0 <= m.cpu_pct <= 100.0
        assert 0.0 <= m.mem_pct <= 100.0
        assert 0.0 <= m.swap_pct <= 100.0
        assert m.disk_io_mbps >= 0.0
        assert m.net_io_mbps >= 0.0


def test_metrics_deterministic_across_runs(small_spec):
    from repro.cluster import Cluster
    from repro.sim import Simulator

    def sample_series():
        sim = Simulator(seed=7)
        cluster = Cluster(sim, small_spec)
        node = cluster.node("p0c0")
        return [cluster.resources.sample(node).cpu_pct for _ in range(20)]

    assert sample_series() == sample_series()


def test_invalid_smoothing_rejected(sim):
    with pytest.raises(ValueError):
        ResourceModel(sim, smoothing=1.0)


def test_metrics_as_dict(cluster):
    m = cluster.resources.sample(cluster.node("p0c0"))
    d = m.as_dict()
    assert set(d) == {"cpu_pct", "mem_pct", "swap_pct", "disk_io_mbps", "net_io_mbps"}
