"""Unit tests for cluster specifications."""

import pytest

from repro.cluster import ClusterSpec, NetworkSpec, NodeRole, NodeSpec, PartitionSpec
from repro.errors import ClusterError


def test_build_regular_layout():
    spec = ClusterSpec.build(partitions=2, computes=3, backups=1)
    assert spec.node_count == 2 * (1 + 1 + 3)
    assert len(spec.partitions) == 2
    assert spec.network_names == ("mgmt", "data", "ipc")
    p0 = spec.partitions[0]
    assert p0.server == "p0s0"
    assert p0.backups == ("p0b0",)
    assert p0.computes == ("p0c0", "p0c1", "p0c2")
    assert spec.nodes["p0s0"].role is NodeRole.SERVER
    assert spec.nodes["p0b0"].role is NodeRole.BACKUP
    assert spec.nodes["p0c0"].role is NodeRole.COMPUTE


def test_paper_fault_testbed_is_136_nodes_8_partitions():
    spec = ClusterSpec.paper_fault_testbed()
    assert len(spec.partitions) == 8
    assert spec.node_count == 136
    assert all(p.size == 17 for p in spec.partitions)


def test_dawning_4000a_is_640_nodes():
    spec = ClusterSpec.dawning_4000a()
    assert spec.node_count == 640
    assert len(spec.partitions) == 40


def test_partition_of():
    spec = ClusterSpec.build(partitions=3, computes=1)
    assert spec.partition_of("p2c0").partition_id == "p2"
    assert spec.partition_of("p0s0").server == "p0s0"


def test_partition_requires_backup():
    with pytest.raises(ClusterError, match="backup"):
        PartitionSpec(partition_id="p0", server="s", backups=(), computes=("c",))


def test_partition_rejects_duplicate_nodes():
    with pytest.raises(ClusterError, match="duplicate"):
        PartitionSpec(partition_id="p0", server="s", backups=("s",), computes=())


def test_node_spec_validation():
    with pytest.raises(ClusterError):
        NodeSpec(node_id="n", partition_id="p", role=NodeRole.COMPUTE, cpus=0)
    with pytest.raises(ClusterError):
        NodeSpec(node_id="n", partition_id="p", role=NodeRole.COMPUTE, mem_mb=0)


def test_network_spec_validation():
    with pytest.raises(ClusterError):
        NetworkSpec(name="x", base_latency=-1)
    with pytest.raises(ClusterError):
        NetworkSpec(name="x", loss_rate=1.0)


def test_build_validation():
    with pytest.raises(ClusterError):
        ClusterSpec.build(partitions=0, computes=1)
    with pytest.raises(ClusterError):
        ClusterSpec.build(partitions=1, computes=1, backups=0)


def test_cluster_spec_consistency_check():
    spec = ClusterSpec.build(partitions=1, computes=1)
    nodes = dict(spec.nodes)
    nodes.pop("p0c0")
    with pytest.raises(ClusterError, match="disagree"):
        ClusterSpec(partitions=spec.partitions, networks=spec.networks, nodes=nodes)


def test_duplicate_network_names_rejected():
    spec = ClusterSpec.build(partitions=1, computes=1)
    with pytest.raises(ClusterError, match="duplicate network"):
        ClusterSpec(
            partitions=spec.partitions,
            networks=(NetworkSpec(name="a"), NetworkSpec(name="a")),
            nodes=dict(spec.nodes),
        )
