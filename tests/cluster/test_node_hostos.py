"""Unit tests for nodes and the per-node host OS."""

import pytest

from repro.errors import ClusterError, NodeDown


def test_node_starts_up_with_free_cpus(cluster):
    node = cluster.node("p0c0")
    assert node.up
    assert node.free_cpus == 4
    assert node.partition_id == "p0"


def test_cpu_allocation_and_release(cluster):
    node = cluster.node("p0c0")
    node.allocate_cpus(3)
    assert node.busy_cpus == 3
    assert node.free_cpus == 1
    node.release_cpus(2)
    assert node.busy_cpus == 1


def test_cpu_oversubscription_rejected(cluster):
    node = cluster.node("p0c0")
    with pytest.raises(ClusterError):
        node.allocate_cpus(5)
    node.allocate_cpus(4)
    with pytest.raises(ClusterError):
        node.allocate_cpus(1)


def test_release_more_than_busy_rejected(cluster):
    node = cluster.node("p0c0")
    with pytest.raises(ClusterError):
        node.release_cpus(1)


def test_allocate_on_down_node_rejected(cluster):
    node = cluster.node("p0c0")
    node.crash()
    with pytest.raises(NodeDown):
        node.allocate_cpus(1)


def test_crash_clears_busy_cpus_and_boot_restores(cluster):
    node = cluster.node("p0c0")
    node.allocate_cpus(2)
    node.crash()
    assert not node.up
    assert node.busy_cpus == 0
    node.boot()
    assert node.up
    assert node.boot_count == 2


def test_crash_and_boot_idempotent(cluster):
    node = cluster.node("p0c0")
    node.boot()  # already up: no-op
    assert node.boot_count == 1
    node.crash()
    node.crash()
    assert node.boot_count == 1


def test_hostos_process_lifecycle(cluster, sim):
    hostos = cluster.hostos("p0c0")
    hp = hostos.start_process("wd")
    assert hostos.process_alive("wd")
    assert hostos.running() == ["wd"]

    beats = []

    def loop():
        while True:
            yield 1.0
            beats.append(sim.now)

    hp.adopt(loop())
    sim.run(until=3.0)
    assert beats == [1.0, 2.0, 3.0]
    hostos.kill_process("wd")
    sim.run(until=6.0)
    assert beats == [1.0, 2.0, 3.0]
    assert not hostos.process_alive("wd")


def test_hostos_rejects_duplicate_live_process(cluster):
    hostos = cluster.hostos("p0c0")
    hostos.start_process("wd")
    with pytest.raises(ClusterError, match="already running"):
        hostos.start_process("wd")


def test_hostos_allows_restart_after_death(cluster):
    hostos = cluster.hostos("p0c0")
    hostos.start_process("wd")
    hostos.kill_process("wd")
    hp2 = hostos.start_process("wd")
    assert hp2.alive


def test_hostos_kill_unknown_process_raises(cluster):
    with pytest.raises(ClusterError):
        cluster.hostos("p0c0").kill_process("ghost")


def test_node_crash_kills_all_processes(cluster, sim):
    hostos = cluster.hostos("p0c0")
    ticks = []

    def loop(tag):
        while True:
            yield 1.0
            ticks.append(tag)

    hostos.start_process("a").adopt(loop("a"))
    hostos.start_process("b").adopt(loop("b"))
    sim.run(until=1.0)
    assert sorted(ticks) == ["a", "b"]
    cluster.node("p0c0").crash()
    sim.run(until=5.0)
    assert sorted(ticks) == ["a", "b"]
    assert hostos.running() == []


def test_start_process_on_down_node_rejected(cluster):
    cluster.node("p0c0").crash()
    with pytest.raises(ClusterError, match="down"):
        cluster.hostos("p0c0").start_process("wd")


def test_on_kill_hooks_run_once(cluster):
    hostos = cluster.hostos("p0c0")
    hp = hostos.start_process("svc")
    calls = []
    hp.on_kill(lambda: calls.append(1))
    hp.kill()
    hp.kill()
    assert calls == [1]


def test_adopt_on_dead_process_rejected(cluster):
    hostos = cluster.hostos("p0c0")
    hp = hostos.start_process("svc")
    hp.kill()

    def loop():
        yield 1

    with pytest.raises(ClusterError, match="dead"):
        hp.adopt(loop())
