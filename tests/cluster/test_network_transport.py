"""Unit tests for fabrics, message routing, RPC, and OS ping."""

import pytest

from repro.cluster import OS_PING_PORT
from repro.errors import TransportError


def bind_collector(cluster, node_id, port):
    inbox = []
    cluster.transport.bind(node_id, port, inbox.append)
    return inbox


def test_send_delivers_with_latency(cluster, sim):
    inbox = bind_collector(cluster, "p0c1", "svc")
    cluster.transport.send("p0c0", "p0c1", "svc", "hello", {"n": 1})
    assert inbox == []  # not synchronous
    sim.run(until=0.01)
    assert len(inbox) == 1
    msg = inbox[0]
    assert msg.mtype == "hello"
    assert msg.payload == {"n": 1}
    assert msg.network == "mgmt"  # first network in spec order
    assert msg.size > 64


def test_send_to_unknown_node_raises(cluster):
    with pytest.raises(TransportError):
        cluster.transport.send("p0c0", "ghost", "svc", "x")
    with pytest.raises(TransportError):
        cluster.transport.send("ghost", "p0c0", "svc", "x")


def test_send_picks_next_network_when_nic_down(cluster, sim):
    inbox = bind_collector(cluster, "p0c1", "svc")
    cluster.networks["mgmt"].set_link("p0c0", False)
    cluster.transport.send("p0c0", "p0c1", "svc", "hello")
    sim.run(until=0.01)
    assert inbox[0].network == "data"


def test_send_fails_when_all_local_nics_down(cluster, sim):
    inbox = bind_collector(cluster, "p0c1", "svc")
    for net in cluster.networks.values():
        net.set_link("p0c0", False)
    assert cluster.transport.send("p0c0", "p0c1", "svc", "hello") is False
    sim.run(until=0.01)
    assert inbox == []
    assert sim.trace.records("net.no_path")


def test_remote_nic_failure_drops_silently(cluster, sim):
    inbox = bind_collector(cluster, "p0c1", "svc")
    cluster.networks["mgmt"].set_link("p0c1", False)
    assert cluster.transport.send("p0c0", "p0c1", "svc", "x", network="mgmt") is False
    sim.run(until=0.01)
    assert inbox == []
    assert sim.trace.counter("net.mgmt.drops") == 1


def test_crashed_destination_drops(cluster, sim):
    inbox = bind_collector(cluster, "p0c1", "svc")
    cluster.transport.send("p0c0", "p0c1", "svc", "x")
    cluster.node("p0c1").crash()
    sim.run(until=0.01)
    assert inbox == []
    assert sim.trace.records("net.dst_down")


def test_crashed_source_cannot_send(cluster):
    cluster.node("p0c0").crash()
    assert cluster.transport.send("p0c0", "p0c1", "svc", "x") is False


def test_unbound_port_drops_with_trace(cluster, sim):
    cluster.transport.send("p0c0", "p0c1", "nobody-home", "x")
    sim.run(until=0.01)
    assert sim.trace.records("net.unbound", port="nobody-home")


def test_endpoint_owned_by_dead_process_drops(cluster, sim):
    hostos = cluster.hostos("p0c1")
    hp = hostos.start_process("svc")
    inbox = []
    cluster.transport.bind("p0c1", "svc", inbox.append, owner=hp)
    hp.kill()
    cluster.transport.send("p0c0", "p0c1", "svc", "x")
    sim.run(until=0.01)
    assert inbox == []


def test_rebind_over_live_owner_rejected(cluster):
    hp = cluster.hostos("p0c1").start_process("svc")
    cluster.transport.bind("p0c1", "svc", lambda m: None, owner=hp)
    with pytest.raises(TransportError, match="already bound"):
        cluster.transport.bind("p0c1", "svc", lambda m: None, owner=cluster.hostos("p0c1").start_process("svc2"))


def test_rebind_after_owner_death_allowed(cluster):
    hostos = cluster.hostos("p0c1")
    hp = hostos.start_process("svc")
    cluster.transport.bind("p0c1", "svc", lambda m: None, owner=hp)
    hp.kill()
    hp2 = hostos.start_process("svc")
    cluster.transport.bind("p0c1", "svc", lambda m: None, owner=hp2)
    assert cluster.transport.bound("p0c1", "svc")


def test_send_all_networks_duplicates_on_usable_fabrics(cluster, sim):
    inbox = bind_collector(cluster, "p0s0", "hb")
    sent = cluster.transport.send_all_networks("p0c0", "p0s0", "hb", "heartbeat")
    assert sent == 3
    sim.run(until=0.01)
    assert sorted(m.network for m in inbox) == ["data", "ipc", "mgmt"]

    cluster.networks["data"].set_link("p0c0", False)
    inbox.clear()
    sent = cluster.transport.send_all_networks("p0c0", "p0s0", "hb", "heartbeat")
    assert sent == 2
    sim.run(until=0.02)
    assert sorted(m.network for m in inbox) == ["ipc", "mgmt"]


def test_rpc_roundtrip(cluster, sim):
    def handler(msg):
        return {"echo": msg.payload["x"] * 2}

    cluster.transport.bind("p0s0", "svc", handler)
    sig = cluster.transport.rpc("p0c0", "p0s0", "svc", "query", {"x": 21})
    sim.run(until=0.5)
    assert sig.fired
    assert sig.value == {"echo": 42}


def test_rpc_timeout_on_dead_target(cluster, sim):
    cluster.node("p0s0").crash()
    sig = cluster.transport.rpc("p0c0", "p0s0", "svc", "query", {}, timeout=0.5)
    sim.run(until=1.0)
    assert sig.fired
    assert sig.value is None


def test_rpc_handler_returning_none_means_no_reply(cluster, sim):
    cluster.transport.bind("p0s0", "svc", lambda msg: None)
    sig = cluster.transport.rpc("p0c0", "p0s0", "svc", "query", {}, timeout=0.3)
    sim.run(until=1.0)
    assert sig.value is None


def test_os_ping_answers_while_node_up(cluster, sim):
    sig = cluster.transport.ping("p0c0", "p0s0", network="mgmt")
    sim.run(until=0.5)
    assert sig.value == {"pong": True}


def test_os_ping_times_out_when_node_down(cluster, sim):
    cluster.node("p0s0").crash()
    sig = cluster.transport.ping("p0c0", "p0s0", network="mgmt", timeout=0.25)
    sim.run(until=0.5)
    assert sig.value is None


def test_os_ping_survives_daemon_death(cluster, sim):
    """OS answers pings even with no daemons: that's how diagnosis tells
    process failure from node failure."""
    hostos = cluster.hostos("p0s0")
    hp = hostos.start_process("gsd")
    hp.kill()
    sig = cluster.transport.ping("p0c0", "p0s0", network="mgmt")
    sim.run(until=0.5)
    assert sig.value == {"pong": True}


def test_fabric_outage_blocks_everything(cluster, sim):
    inbox = bind_collector(cluster, "p0c1", "svc")
    for net in cluster.networks.values():
        net.set_fabric(False)
    assert cluster.transport.send("p0c0", "p0c1", "svc", "x") is False
    sim.run(until=0.01)
    assert inbox == []


def test_network_split_blocks_cross_group_only(cluster, sim):
    inbox_c1 = bind_collector(cluster, "p0c1", "svc")
    inbox_p1 = bind_collector(cluster, "p1c0", "svc")
    p0 = set(cluster.partition("p0").all_nodes)
    p1 = set(cluster.partition("p1").all_nodes)
    for net in cluster.networks.values():
        net.split([p0, p1])
    cluster.transport.send("p0c0", "p0c1", "svc", "same-side")
    cluster.transport.send("p0c0", "p1c0", "svc", "cross")
    sim.run(until=0.01)
    assert len(inbox_c1) == 1
    assert inbox_p1 == []
    cluster.networks["mgmt"].heal()
    cluster.transport.send("p0c0", "p1c0", "svc", "cross-after-heal", network="mgmt")
    sim.run(until=0.02)
    assert len(inbox_p1) == 1


def test_loss_rate_drops_some_messages(sim):
    from repro.cluster import Cluster, ClusterSpec

    spec = ClusterSpec.build(partitions=1, computes=2, networks=("lossy",), loss_rate=0.5)
    cluster = Cluster(sim, spec)
    inbox = bind_collector(cluster, "p0c1", "svc")
    for _ in range(200):
        cluster.transport.send("p0c0", "p0c1", "svc", "x", network="lossy")
    sim.run(until=1.0)
    assert 40 < len(inbox) < 160  # ~100 expected


def test_message_and_byte_counters(cluster, sim):
    bind_collector(cluster, "p0c1", "svc")
    cluster.transport.send("p0c0", "p0c1", "svc", "x", {"a": 1}, network="mgmt")
    sim.run(until=0.01)
    assert sim.trace.counter("net.mgmt.msgs") == 1
    assert sim.trace.counter("net.mgmt.bytes") > 64


def test_in_flight_link_failure_drops_with_trace(cluster, sim):
    """A message already accepted for transmission is re-checked at
    arrival: a link that dies while it is in flight drops it and the
    ``net.drop`` record carries ``in_flight=True``."""
    inbox = bind_collector(cluster, "p0c1", "svc")
    assert cluster.transport.send("p0c0", "p0c1", "svc", "x", network="mgmt")
    cluster.networks["mgmt"].set_link("p0c1", False)  # fails mid-flight
    sim.run(until=0.01)
    assert inbox == []
    drops = sim.trace.records("net.drop", network="mgmt")
    assert drops and drops[-1].fields.get("in_flight") is True


def test_same_flow_messages_never_reorder(cluster, sim):
    """Per-(src, dst) FIFO: jitter may bunch messages up but a later send
    never overtakes an earlier one on the same flow."""
    inbox = bind_collector(cluster, "p0c1", "svc")
    for i in range(50):
        cluster.transport.send("p0c0", "p0c1", "svc", "seq", {"i": i}, network="mgmt")
    sim.run(until=1.0)
    assert [m.payload["i"] for m in inbox] == list(range(50))
