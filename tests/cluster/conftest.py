import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.sim import Simulator


@pytest.fixture()
def sim():
    return Simulator(seed=42)


@pytest.fixture()
def small_spec():
    """2 partitions x (1 server + 1 backup + 2 computes) = 8 nodes, 3 networks."""
    return ClusterSpec.build(partitions=2, computes=2, backups=1)


@pytest.fixture()
def cluster(sim, small_spec):
    return Cluster(sim, small_spec)
