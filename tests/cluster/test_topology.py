"""Two-level (hierarchical) network topology tests."""

import pytest

from repro.cluster import Cluster, ClusterSpec, NetworkSpec
from repro.errors import ClusterError
from repro.sim import Simulator
from repro.units import usec


def build_two_level(jitter=0.0):
    spec = ClusterSpec.build(partitions=2, computes=2, networks=("mgmt",))
    nets = (NetworkSpec(name="mgmt", base_latency=usec(100), jitter=jitter,
                        topology="two_level", uplink_latency=usec(200)),)
    spec2 = ClusterSpec(partitions=spec.partitions, networks=nets, nodes=dict(spec.nodes))
    sim = Simulator(seed=3)
    return sim, Cluster(sim, spec2)


def test_topology_validation():
    with pytest.raises(ClusterError):
        NetworkSpec(name="x", topology="ring")
    with pytest.raises(ClusterError):
        NetworkSpec(name="x", uplink_latency=-1)


def test_intra_partition_latency_is_base():
    sim, cluster = build_two_level()
    net = cluster.networks["mgmt"]
    assert net.latency_sample("p0c0", "p0c1") == pytest.approx(usec(100))
    assert net.latency_sample("p0c0", "p0s0") == pytest.approx(usec(100))


def test_cross_partition_latency_pays_uplink():
    sim, cluster = build_two_level()
    net = cluster.networks["mgmt"]
    assert net.latency_sample("p0c0", "p1c0") == pytest.approx(usec(300))


def test_flat_topology_ignores_groups(cluster):
    net = cluster.networks["mgmt"]
    base = net.spec.base_latency
    # flat: both intra and inter partition draw from the same base.
    samples = [net.latency_sample("p0c0", "p1c0") for _ in range(20)]
    assert min(samples) >= base
    assert min(samples) < base + usec(120)  # no systematic uplink charge


def test_delivery_uses_topology_latency():
    sim, cluster = build_two_level()
    arrivals = {}
    cluster.transport.bind("p0c1", "svc", lambda m: arrivals.__setitem__("local", sim.now))
    cluster.transport.bind("p1c0", "svc", lambda m: arrivals.__setitem__("remote", sim.now))
    cluster.transport.send("p0c0", "p0c1", "svc", "x")
    cluster.transport.send("p0c0", "p1c0", "svc", "x")
    sim.run(until=0.01)
    assert arrivals["local"] == pytest.approx(usec(100))
    assert arrivals["remote"] == pytest.approx(usec(300))


def test_kernel_boots_on_two_level_topology():
    """Sanity: the whole kernel works unchanged on the hierarchical fabric
    (the grace margin dwarfs the uplink charge)."""
    from repro.kernel import KernelTimings, PhoenixKernel

    sim, cluster = build_two_level(jitter=usec(50))
    kernel = PhoenixKernel(cluster, timings=KernelTimings(heartbeat_interval=10.0))
    kernel.boot()
    sim.run(until=65.0)
    assert sim.trace.records("failure.detected") == []
