"""RPC lifecycle: timer hygiene, fail-fast, retries, and in-flight caps."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.sim import Simulator


def drive(sim, signal, max_time=60.0):
    deadline = sim.now + max_time
    while not signal.fired:
        nxt = sim.peek()
        if nxt is None or nxt > deadline:
            break
        sim.step()
    return signal.value if signal.fired else None


def bind_echo(cluster, node_id, port):
    cluster.transport.bind(node_id, port, lambda msg: {"echo": msg.payload})


# -- timer hygiene (the tentpole regression) -----------------------------


def test_reply_cancels_timeout_event(cluster, sim):
    bind_echo(cluster, "p0c1", "svc")
    sig = cluster.transport.rpc("p0c0", "p0c1", "svc", "q", {"n": 1}, timeout=30.0)
    reply = drive(sim, sig)
    assert reply == {"echo": {"n": 1}}
    # The 30s timeout event must be gone the moment the reply landed —
    # nothing left but possibly compaction residue.
    assert sim.pending_events == 0


def test_pending_events_stay_bounded_across_many_rpcs(cluster, sim):
    """The leak this PR fixes: 1000 sequential successful RPCs used to
    leave 1000 pending timeout events (peak pending_events == N); with
    cancel-on-reply the peak tracks in-flight count, not history."""
    bind_echo(cluster, "p0c1", "svc")
    peak = 0
    for i in range(1000):
        sig = cluster.transport.rpc("p0c0", "p0c1", "svc", "q", {"i": i}, timeout=30.0)
        peak = max(peak, sim.pending_events)
        assert drive(sim, sig) is not None
    assert peak <= 4  # O(in-flight), not O(N)
    assert sim.pending_events == 0
    assert len(sim._heap) <= 200  # compaction keeps dead entries swept


def test_timeout_fires_when_no_reply(cluster, sim):
    # Bound port whose handler returns None -> no reply is ever sent.
    cluster.transport.bind("p0c1", "mute", lambda msg: None)
    sig = cluster.transport.rpc("p0c0", "p0c1", "mute", "q", timeout=0.5)
    assert drive(sim, sig) is None
    assert sim.now == pytest.approx(0.5)
    assert sim.pending_events == 0  # reply port unbound, nothing leaks


# -- fail-fast on send-time drop ----------------------------------------


def test_rpc_fails_next_tick_when_send_refused(cluster, sim):
    for net in cluster.networks.values():
        net.set_link("p0c0", False)  # every local NIC down: send() is False
    sig = cluster.transport.rpc("p0c0", "p0c1", "svc", "q", timeout=30.0)
    assert drive(sim, sig) is None
    assert sim.now < 0.001  # failed immediately, not after the 30s budget
    assert sim.pending_events == 0


def test_rpc_to_dead_destination_still_burns_timeout(cluster, sim):
    """Send succeeds (the sender cannot see a remote crash), so the RPC
    must take the full timeout — diagnosis timing depends on this."""
    cluster.node("p0c1").crash()
    sig = cluster.transport.rpc("p0c0", "p0c1", "svc", "q", timeout=0.5)
    assert drive(sim, sig) is None
    assert sim.now == pytest.approx(0.5)


# -- rpc_retry -----------------------------------------------------------


def test_rpc_retry_validates_parameters(cluster):
    with pytest.raises(Exception):
        cluster.transport.rpc_retry("p0c0", "p0c1", "svc", "q", attempts=0)
    with pytest.raises(Exception):
        cluster.transport.rpc_retry("p0c0", "p0c1", "svc", "q", backoff=0.5)


def test_rpc_retry_succeeds_first_attempt_without_retrying(cluster, sim):
    bind_echo(cluster, "p0c1", "svc")
    sig = cluster.transport.rpc_retry("p0c0", "p0c1", "svc", "q", {"n": 2})
    assert drive(sim, sig) == {"echo": {"n": 2}}
    assert sim.trace.counter("rpc.retries") == 0


def test_rpc_retry_survives_lossy_network(sim):
    """With 15% loss over a quarter of single-shot RPCs die (request or
    reply leg); six retrying attempts make every call get through."""
    spec = ClusterSpec.build(partitions=1, computes=2, networks=("lossy",), loss_rate=0.15)
    cluster = Cluster(sim, spec)
    bind_echo(cluster, "p0c1", "svc")
    got = 0
    for i in range(20):
        sig = cluster.transport.rpc_retry(
            "p0c0", "p0c1", "svc", "q", {"i": i}, timeout=4.0, attempts=6
        )
        if drive(sim, sig) is not None:
            got += 1
    assert got == 20
    assert sim.trace.counter("rpc.retries") > 0  # loss really happened
    assert sim.pending_events == 0


def test_rpc_retry_gives_up_within_total_budget(cluster, sim):
    cluster.node("p0c1").crash()
    start = sim.now
    sig = cluster.transport.rpc_retry(
        "p0c0", "p0c1", "svc", "q", timeout=2.0, attempts=3, jitter=0.0
    )
    assert drive(sim, sig) is None
    # Total budget semantics: attempts split the window, they don't extend it.
    assert sim.now - start == pytest.approx(2.0, abs=0.01)
    assert sim.trace.records("rpc.gave_up", dst="p0c1")


def test_rpc_retry_inflight_cap_queues_excess_calls(cluster, sim):
    cluster.transport.bind("p0c1", "slow", lambda msg: None)  # never replies
    sigs = [
        cluster.transport.rpc_retry(
            "p0c0", "p0c1", "slow", "q", timeout=1.0, attempts=1, inflight_cap=2
        )
        for _ in range(6)
    ]
    sim.run(until=0.001)
    assert cluster.transport._inflight.get("p0c1", 0) <= 2
    assert sim.trace.counter("rpc.inflight_queued") == 4
    for sig in sigs:
        drive(sim, sig)
    assert all(sig.fired for sig in sigs)
    assert cluster.transport._inflight.get("p0c1", 0) == 0  # gates drained


# -- bind collision diagnostics -----------------------------------------


def test_ownerless_rebind_leaves_collision_trace(cluster, sim):
    cluster.transport.bind("p0c0", "shared", lambda msg: None)
    assert not sim.trace.records("transport.bind_collision")
    cluster.transport.bind("p0c0", "shared", lambda msg: None)
    assert sim.trace.records("transport.bind_collision", node="p0c0", port="shared")
