"""Opt-in link bandwidth (serialization delay) + across-seed stability."""

import pytest

from repro.cluster import Cluster, ClusterSpec, NetworkSpec
from repro.errors import ClusterError
from repro.sim import Simulator
from repro.units import usec


def build_bw_cluster(bandwidth):
    base = ClusterSpec.build(partitions=1, computes=2, networks=("net",))
    nets = (NetworkSpec(name="net", base_latency=usec(100), jitter=0.0, bandwidth=bandwidth),)
    spec = ClusterSpec(partitions=base.partitions, networks=nets, nodes=dict(base.nodes))
    sim = Simulator(seed=4)
    return sim, Cluster(sim, spec)


def test_bandwidth_validation():
    with pytest.raises(ClusterError):
        NetworkSpec(name="x", bandwidth=0)
    with pytest.raises(ClusterError):
        NetworkSpec(name="x", bandwidth=-1)


def test_serialization_delay_scales_with_size():
    sim, cluster = build_bw_cluster(bandwidth=1e6)  # 1 MB/s
    arrivals = {}
    cluster.transport.bind("p0c1", "svc", lambda m: arrivals.__setitem__(m.mtype, sim.now))
    cluster.transport.send("p0c0", "p0c1", "svc", "small", {"x": 1})
    cluster.transport.send("p0c0", "p0c1", "svc", "big", {"blob": "z" * 100_000})
    sim.run(until=1.0)
    # Small message: base latency + ~70 B of serialization.
    assert usec(100) < arrivals["small"] < usec(300)
    # ~100 KB at 1 MB/s ~= 0.1 s of serialization.
    assert arrivals["big"] == pytest.approx(0.1, rel=0.05)


def test_default_model_has_no_serialization_charge(cluster, sim):
    inbox = []
    cluster.transport.bind("p0c1", "svc", lambda m: inbox.append(sim.now))
    cluster.transport.send("p0c0", "p0c1", "svc", "big", {"blob": "z" * 100_000})
    sim.run(until=0.01)
    assert inbox and inbox[0] < 0.001  # latency-only default


def test_kernel_works_on_bandwidth_limited_fabric():
    """Kernel messages are tiny: a 100 MB/s fabric changes nothing."""
    from repro.kernel import KernelTimings, PhoenixKernel

    base = ClusterSpec.build(partitions=2, computes=3, networks=("a", "b", "c"))
    nets = tuple(
        NetworkSpec(name=n, base_latency=usec(100), jitter=usec(50), bandwidth=100e6)
        for n in ("a", "b", "c")
    )
    spec = ClusterSpec(partitions=base.partitions, networks=nets, nodes=dict(base.nodes))
    sim = Simulator(seed=5)
    kernel = PhoenixKernel(Cluster(sim, spec), timings=KernelTimings(heartbeat_interval=10.0))
    kernel.boot()
    sim.run(until=45.0)
    assert sim.trace.records("failure.detected") == []


def test_fault_table_values_stable_across_seeds():
    """The Tables 1–3 numbers are protocol-determined: different RNG seeds
    (different jitter draws) move them by microseconds, not percents."""
    from repro.experiments.fault_tables import run_fault_case

    spec = ClusterSpec.build(partitions=3, computes=4)
    a = run_fault_case("wd", "process", seed=1, heartbeat_interval=5.0, spec=spec)
    b = run_fault_case("wd", "process", seed=2, heartbeat_interval=5.0, spec=spec)
    assert a.detect == pytest.approx(b.detect, abs=0.01)
    assert a.diagnose == pytest.approx(b.diagnose, abs=0.01)
    assert a.recover == pytest.approx(b.recover, abs=0.01)
