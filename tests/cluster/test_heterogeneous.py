"""Heterogeneous clusters: mixed CPU/memory nodes end to end."""

import pytest

from repro.cluster import Cluster, ClusterSpec, NetworkSpec, NodeRole, NodeSpec, PartitionSpec
from repro.kernel import KernelTimings, PhoenixKernel
from repro.sim import Simulator
from repro.userenv.pws import PoolSpec, install_pws
from repro.userenv.pws.server import STATUS, SUBMIT
from repro.userenv.pws.server import PORT as PWS_PORT


def heterogeneous_spec() -> ClusterSpec:
    """One partition: fat server, standard backup, 2 fat + 2 thin computes."""

    def node(nid, role, cpus, mem):
        return NodeSpec(node_id=nid, partition_id="p0", role=role, cpus=cpus, mem_mb=mem)

    nodes = {
        "p0s0": node("p0s0", NodeRole.SERVER, 8, 32768),
        "p0b0": node("p0b0", NodeRole.BACKUP, 4, 8192),
        "fat0": node("fat0", NodeRole.COMPUTE, 16, 65536),
        "fat1": node("fat1", NodeRole.COMPUTE, 16, 65536),
        "thin0": node("thin0", NodeRole.COMPUTE, 2, 4096),
        "thin1": node("thin1", NodeRole.COMPUTE, 2, 4096),
    }
    partition = PartitionSpec(
        partition_id="p0", server="p0s0", backups=("p0b0",),
        computes=("fat0", "fat1", "thin0", "thin1"),
    )
    return ClusterSpec(partitions=(partition,), networks=(NetworkSpec(name="mgmt"),), nodes=nodes)


@pytest.fixture()
def het_kernel():
    sim = Simulator(seed=12)
    cluster = Cluster(sim, heterogeneous_spec())
    kernel = PhoenixKernel(cluster, timings=KernelTimings(heartbeat_interval=5.0))
    kernel.boot()
    sim.run(until=6.0)
    return sim, kernel


def test_kernel_boots_and_stays_quiet(het_kernel):
    sim, kernel = het_kernel
    sim.run(until=30.0)
    assert sim.trace.records("failure.detected") == []


def test_bulletin_reports_true_capacities(het_kernel):
    sim, kernel = het_kernel
    rows = {r["_key"]: r for r in kernel.bulletin("p0").store.query("node_metrics")}
    assert rows["fat0"]["cpus"] == 16
    assert rows["thin0"]["cpus"] == 2


def test_scheduler_respects_mixed_capacities(het_kernel):
    sim, kernel = het_kernel
    install_pws(kernel, [PoolSpec("all", kernel.cluster.compute_nodes())])
    sim.run(until=sim.now + 2.0)

    def rpc(mtype, payload):
        sig = kernel.cluster.transport.rpc(
            "thin0", kernel.placement[("pws", "p0")], PWS_PORT, mtype, payload, timeout=5.0)
        while not sig.fired and sim.peek() is not None:
            sim.step()
        return sig.value

    # An 8-cpu-per-node job only fits the fat nodes.
    big = rpc(SUBMIT, {"user": "u", "nodes": 2, "cpus_per_node": 8, "duration": 30.0,
                       "pool": "all"})
    sim.run(until=sim.now + 2.0)
    status = rpc(STATUS, {"job_id": big["job_id"]})
    assert status["job"]["state"] == "running"
    assert sorted(status["job"]["assigned_nodes"]) == ["fat0", "fat1"]
    # A 2-cpu job still lands on the thin/backup nodes.
    small = rpc(SUBMIT, {"user": "u", "nodes": 3, "cpus_per_node": 2, "duration": 30.0,
                         "pool": "all"})
    sim.run(until=sim.now + 2.0)
    status = rpc(STATUS, {"job_id": small["job_id"]})
    assert status["job"]["state"] == "running"
    assert set(status["job"]["assigned_nodes"]) <= {"thin0", "thin1", "p0b0", "fat0", "fat1"}
