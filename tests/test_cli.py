"""Command-line front door (`python -m repro`)."""

import pytest

from repro.__main__ import main


def test_help(capsys):
    assert main(["--help"]) == 0
    assert "tables" in capsys.readouterr().out


def test_no_args_prints_help(capsys):
    assert main([]) == 0
    assert "scalability" in capsys.readouterr().out


def test_unknown_command(capsys):
    assert main(["frobnicate"]) == 2
    assert "unknown command" in capsys.readouterr().err


def test_tables_command(capsys):
    assert main(["tables", "--component", "wd", "--interval", "5"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "process" in out


def test_linpack_command(capsys):
    assert main(["linpack"]) == 0
    assert "Table 4" in capsys.readouterr().out


def test_scalability_command(capsys):
    assert main(["scalability", "--nodes", "64"]) == 0
    assert "GridView" in capsys.readouterr().out


def test_ablations_a3(capsys):
    assert main(["ablations", "--which", "a3"]) == 0
    assert "tree" in capsys.readouterr().out
