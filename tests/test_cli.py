"""Command-line front door (`python -m repro`)."""

import pytest

from repro.__main__ import main


def test_help(capsys):
    assert main(["--help"]) == 0
    assert "tables" in capsys.readouterr().out


def test_no_args_prints_help(capsys):
    assert main([]) == 0
    assert "scalability" in capsys.readouterr().out


def test_unknown_command(capsys):
    assert main(["frobnicate"]) == 2
    assert "unknown command" in capsys.readouterr().err


def test_tables_command(capsys):
    assert main(["tables", "--component", "wd", "--interval", "5"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "process" in out


def test_linpack_command(capsys):
    assert main(["linpack"]) == 0
    assert "Table 4" in capsys.readouterr().out


def test_scalability_command(capsys):
    assert main(["scalability", "--nodes", "64"]) == 0
    assert "GridView" in capsys.readouterr().out


def test_ablations_a3(capsys):
    assert main(["ablations", "--which", "a3"]) == 0
    assert "tree" in capsys.readouterr().out


def test_trace_command(tmp_path, capsys):
    from repro.sim import Simulator

    sim = Simulator()

    def failover():
        root = sim.trace.span("gsd.failover", node="p1s0")
        diag = root.child("gsd.diagnose")
        yield 0.5
        diag.end(kind="node")
        rec = root.child("gsd.recover", action="migrate")
        yield 2.0
        rec.end(ok=True)
        root.end(ok=True)

    sim.spawn(failover())
    sim.run()
    path = tmp_path / "trace.jsonl"
    sim.trace.export_jsonl(str(path))

    assert main(["trace", str(path)]) == 0
    out = capsys.readouterr().out
    assert "== span tree ==" in out
    assert "== latency histograms ==" in out
    assert "== critical path (gsd.failover) ==" in out
    # The tree indents children under the failover root...
    assert "sp1 gsd.failover" in out and "\n  sp2 gsd.diagnose" in out
    # ...and the critical path follows the gating (longest) child.
    assert "-> sp3 gsd.recover" in out


def test_trace_command_custom_root_category(tmp_path, capsys):
    from repro.sim import Simulator

    sim = Simulator()
    sim.trace.span("rpc.call").end()
    path = tmp_path / "trace.jsonl"
    sim.trace.export_jsonl(str(path))
    assert main(["trace", str(path), "--root-category", "rpc.call"]) == 0
    out = capsys.readouterr().out
    assert "== critical path (rpc.call) ==" in out
    assert "no closed 'gsd.failover'" not in out


def test_trace_command_surfaces_per_consumer_slo_alert(tmp_path, capsys):
    """`python -m repro trace` pages on a slow ES subscription from an
    exported trace (the per-consumer `es.deliver.slo` rule)."""
    from repro.sim.trace import Trace

    trace = Trace()
    for _ in range(20):
        trace.observe("es.deliver", 0.01)  # aggregate healthy
        trace.observe("es.deliver.to.slowpoke", 0.9)  # one consumer is not
    path = tmp_path / "export.jsonl"
    trace.export_jsonl(str(path))
    assert main(["trace", str(path)]) == 0
    out = capsys.readouterr().out
    assert "es.deliver.slo" in out and "slowpoke" in out


def test_query_command_default(capsys):
    assert main(["query", "--warm", "20", "--partitions", "2", "--computes", "2"]) == 0
    out = capsys.readouterr().out
    assert "state" in out and "up" in out and "[scan" in out


def test_query_command_text_view_and_order(capsys):
    assert main([
        "query", "--warm", "20", "--partitions", "2", "--computes", "2", "--view",
        "select state, count(*) as n from nodes group by state",
    ]) == 0
    out = capsys.readouterr().out
    assert "[view" in out and "n" in out


def test_query_command_check_smoke(capsys):
    assert main(["query", "--check"]) == 0
    assert "query smoke: OK" in capsys.readouterr().out


def test_query_repl_session():
    """One long-lived REPL session: time advances between queries, AS OF
    reads the now-populated history, and errors never kill the loop."""
    import io

    from repro.experiments.query_cli import repl

    script = "\n".join([
        "\\t",
        "select state, count(*) as n from nodes group by state",
        "\\run 20",
        "select * from nodes as of -5",          # relative time travel
        "\\view repl_v select node, state from nodes where state = 'up'",
        "\\read repl_v",
        "select bogus syntax here",               # surfaced, not fatal
        "\\q",
    ]) + "\n"
    out = io.StringIO()
    assert repl(io.StringIO(script), out, partitions=2, computes=2, warm=20.0) == 0
    text = out.getvalue()
    assert "bulletin repl" in text
    assert text.count("query>") >= 8
    assert "[scan" in text and "[as-of" in text
    assert "as-of history for 'nodes' starts at" in text
    assert "view repl_v registered" in text and "[view" in text
    assert "error:" in text  # the bogus query reported, session continued


def test_query_repl_socket_sessions_share_one_cluster(tmp_path):
    """``--repl --socket`` serves sequential connections off one booted
    cluster: virtual time advanced by the first session is where the
    second session starts."""
    import io
    import re
    import socket as socketlib
    import threading

    from repro.experiments.query_cli import serve

    path = str(tmp_path / "repl.sock")
    server = threading.Thread(
        target=serve,
        args=(path,),
        kwargs={"partitions": 2, "computes": 2, "warm": 20.0,
                "max_sessions": 2, "log_stream": io.StringIO()},
        daemon=True,
    )
    server.start()

    def session(lines):
        deadline = threading.Event()
        for _ in range(100):
            try:
                conn = socketlib.socket(socketlib.AF_UNIX)
                conn.connect(path)
                break
            except (FileNotFoundError, ConnectionRefusedError):
                conn.close()
                deadline.wait(0.1)
        else:
            raise AssertionError("socket server never came up")
        with conn, conn.makefile("rw", encoding="utf-8") as stream:
            stream.write("\n".join(lines) + "\n")
            stream.flush()
            conn.shutdown(socketlib.SHUT_WR)
            return stream.read()

    first = session(["\\t", "\\run 15", "\\t", "\\q"])
    second = session(["\\t", "select state, count(*) as n from nodes group by state",
                      "\\q"])
    server.join(timeout=120)
    assert not server.is_alive()

    assert "bulletin repl" in first and "bulletin repl" in second
    times_first = [float(m) for m in re.findall(r"t=([\d.]+)s", first)]
    times_second = [float(m) for m in re.findall(r"t=([\d.]+)s", second)]
    assert times_first[0] == 20.0 and times_first[-1] == 35.0
    # The second connection resumes the same cluster, not a fresh boot.
    assert times_second[0] == 35.0
    assert "[scan" in second and "up" in second


def test_query_repl_stdin_eof(monkeypatch, capsys):
    """``--repl`` with an exhausted stdin exits cleanly (exit code 0)."""
    import io

    monkeypatch.setattr("sys.stdin", io.StringIO("\\t\n"))
    assert main(["query", "--repl", "--partitions", "2",
                 "--computes", "2", "--warm", "20"]) == 0
    assert "bulletin repl" in capsys.readouterr().out
