"""Synthetic job trace tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads.jobs import TraceConfig, generate_trace, trace_demand_cpu_seconds


def test_trace_deterministic_for_seed():
    a = generate_trace(20, seed=7)
    b = generate_trace(20, seed=7)
    assert a == b
    c = generate_trace(20, seed=8)
    assert a != c


def test_arrivals_strictly_increasing():
    trace = generate_trace(50, seed=1)
    arrivals = [e.arrival for e in trace]
    assert arrivals == sorted(arrivals)
    assert all(a > 0 for a in arrivals)


def test_sizes_within_config_bounds():
    cfg = TraceConfig(max_nodes=4, cpus_per_node_choices=(2,))
    for entry in generate_trace(100, cfg, seed=2):
        assert 1 <= entry.nodes <= 4
        assert entry.cpus_per_node == 2
        assert entry.duration >= 1.0
        assert entry.user in cfg.users


def test_small_jobs_dominate():
    trace = generate_trace(300, TraceConfig(max_nodes=8), seed=3)
    singles = sum(1 for e in trace if e.nodes == 1)
    assert singles > len(trace) * 0.4


def test_submit_payload():
    entry = generate_trace(1, seed=4)[0]
    payload = entry.submit_payload(pool="batch")
    assert payload["pool"] == "batch"
    assert payload["nodes"] == entry.nodes


def test_demand_accounting():
    trace = generate_trace(10, seed=5)
    expected = sum(e.nodes * e.cpus_per_node * e.duration for e in trace)
    assert trace_demand_cpu_seconds(trace) == pytest.approx(expected)


def test_validation():
    with pytest.raises(WorkloadError):
        generate_trace(0)
    with pytest.raises(WorkloadError):
        TraceConfig(arrival_rate_per_min=0)
    with pytest.raises(WorkloadError):
        TraceConfig(duration_median_s=-1)
    with pytest.raises(WorkloadError):
        TraceConfig(max_nodes=0)


@given(st.integers(1, 60), st.integers(0, 2**31 - 1))
def test_property_trace_well_formed(count, seed):
    trace = generate_trace(count, seed=seed)
    assert len(trace) == count
    assert all(e.duration >= 1.0 and e.nodes >= 1 and e.cpus_per_node >= 1 for e in trace)
