"""Linpack model + real kernel tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads.linpack import HplModel, linpack_flops, run_real_linpack


def test_rmax_grows_with_cpus():
    model = HplModel()
    values = [model.rmax_gflops(c) for c in (4, 16, 64, 128)]
    assert values == sorted(values)
    assert values[0] > 0


def test_parallel_efficiency_decays():
    model = HplModel()
    per_cpu = [model.rmax_gflops(c) / c for c in (4, 16, 64, 128)]
    assert per_cpu == sorted(per_cpu, reverse=True)


def test_overhead_small_and_bounded():
    """Table 4's claim: low single-digit percent at every scale."""
    model = HplModel()
    for cpus in (4, 16, 64, 128):
        pct = 100.0 * model.overhead_fraction(cpus)
        assert 0.1 < pct < 2.5, cpus


def test_overhead_tracks_daemon_fraction():
    light = HplModel(daemon_cpu_fraction=0.001)
    heavy = HplModel(daemon_cpu_fraction=0.05)
    assert heavy.overhead_fraction(64) > light.overhead_fraction(64)
    assert heavy.rmax_with_phoenix(64) < light.rmax_with_phoenix(64)


def test_table4_row_consistency():
    row = HplModel().table4_row(64)
    assert row["with_gflops"] < row["without_gflops"]
    assert row["overhead_pct"] == pytest.approx(
        100.0 * (1 - row["with_gflops"] / row["without_gflops"])
    )


def test_invalid_cpu_counts_rejected():
    model = HplModel()
    with pytest.raises(WorkloadError):
        model.rmax_gflops(0)
    with pytest.raises(WorkloadError):
        model.rmax_gflops(6)  # not a multiple of cpus_per_node


@given(st.sampled_from([4, 8, 16, 32, 64, 128, 256, 512]))
def test_property_with_phoenix_never_exceeds_without(cpus):
    model = HplModel()
    assert model.rmax_with_phoenix(cpus) < model.rmax_gflops(cpus)
    assert 0.0 < model.overhead_fraction(cpus) < 0.1


def test_linpack_flops_cubic():
    assert linpack_flops(1000) == pytest.approx((2 / 3) * 1e9 + 2e6)


def test_real_linpack_small_smoke():
    result = run_real_linpack(n=200, repeats=2)
    assert result["gflops"] > 0
    assert result["residual"] < 1e-8


def test_real_linpack_validation():
    with pytest.raises(WorkloadError):
        run_real_linpack(n=0)
    with pytest.raises(WorkloadError):
        run_real_linpack(n=10, repeats=0)


def test_real_linpack_with_monitor_threads_smoke():
    result = run_real_linpack(n=200, repeats=2, monitor_threads=2)
    assert result["gflops"] > 0
