"""MPI job failure semantics: a dead rank aborts the whole job."""

import pytest

from repro.cluster import Cluster, ClusterSpec, FaultInjector
from repro.sim import Simulator
from repro.workloads.mpi import MpiJob, MpiJobSpec


def setup_job(seed=0, iterations=50):
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, ClusterSpec.build(partitions=2, computes=6))
    spec = MpiJobSpec(job_id="doomed", iterations=iterations, work_per_iteration=0.5)
    nodes = cluster.compute_nodes()[:6]
    job = MpiJob(cluster, nodes, spec)
    job.start()
    return sim, cluster, job, nodes


def test_node_crash_aborts_job():
    sim, cluster, job, nodes = setup_job()
    sim.run(until=5.0)  # ~10 iterations in
    FaultInjector(cluster).crash_node(nodes[2])
    sim.run(until=30.0)
    assert job.done.fired
    result = job.done.value
    assert result.failed
    assert result.failed_rank == 2
    assert result.iterations < 50
    # Every surviving rank process was reaped (no barrier zombies).
    for rank, node in enumerate(nodes):
        hostos = cluster.hostos(node)
        assert not hostos.process_alive(f"mpi.doomed.{rank}"), node


def test_rank_process_kill_aborts_job():
    sim, cluster, job, nodes = setup_job(seed=1)
    sim.run(until=3.0)
    cluster.hostos(nodes[4]).kill_process("mpi.doomed.4")
    sim.run(until=30.0)
    result = job.done.value
    assert result.failed and result.failed_rank == 4


def test_unfailed_job_reports_success():
    sim, cluster, job, nodes = setup_job(iterations=4)
    sim.run(until=60.0)
    result = job.done.value
    assert not result.failed
    assert result.failed_rank is None
    assert result.iterations == 4


def test_abort_time_close_to_fault_time():
    """Survivors are reaped promptly, not after a timeout."""
    sim, cluster, job, nodes = setup_job(seed=2)
    sim.run(until=5.0)
    t_fault = sim.now
    FaultInjector(cluster).crash_node(nodes[0])
    sim.run(until=30.0)
    assert job.done.value.failed
    aborted = sim.trace.first("mpi.aborted")
    assert aborted.time - t_fault < 0.1
