"""Executable MPI-style workload: barriers, noise, overhead shape."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.errors import WorkloadError
from repro.kernel import KernelTimings
from repro.sim import Simulator
from repro.workloads.mpi import MpiJobSpec, NoiseProfile, run_mpi_job


def make_cluster(seed=0, partitions=2):
    sim = Simulator(seed=seed)
    return Cluster(sim, ClusterSpec.build(partitions=partitions, computes=6))


def test_spec_validation():
    with pytest.raises(WorkloadError):
        MpiJobSpec(job_id="", iterations=1)
    with pytest.raises(WorkloadError):
        MpiJobSpec(job_id="j", iterations=0)
    with pytest.raises(WorkloadError):
        MpiJobSpec(job_id="j", work_per_iteration=0)
    with pytest.raises(WorkloadError):
        MpiJobSpec(job_id="j", allreduce_bytes=0)


def test_job_validation():
    cluster = make_cluster()
    spec = MpiJobSpec(job_id="j")
    with pytest.raises(WorkloadError):
        run_mpi_job(cluster, [], spec)
    with pytest.raises(WorkloadError):
        run_mpi_job(cluster, ["p0c0", "p0c0"], spec)


def test_noiseless_duration_is_iterations_times_work_plus_collectives():
    cluster = make_cluster()
    spec = MpiJobSpec(job_id="j", iterations=10, work_per_iteration=0.2)
    result = run_mpi_job(cluster, cluster.compute_nodes()[:4], spec)
    assert result.iterations == 10
    assert result.ranks == 4
    assert len(result.iteration_times) == 10
    # Duration = 10 x (0.2 + small collective cost).
    assert result.duration == pytest.approx(2.0, rel=0.05)
    assert result.duration > 2.0  # the collectives are not free


def test_single_rank_job():
    cluster = make_cluster()
    spec = MpiJobSpec(job_id="solo", iterations=5, work_per_iteration=0.1)
    result = run_mpi_job(cluster, ["p0c0"], spec)
    assert result.duration == pytest.approx(0.5, rel=0.05)


def test_cpu_fraction_stretches_compute():
    cluster = make_cluster()
    spec = MpiJobSpec(job_id="taxed", iterations=10, work_per_iteration=0.2)
    noisy = run_mpi_job(cluster, cluster.compute_nodes()[:2], spec,
                        noise=NoiseProfile(cpu_fraction=0.10))
    clean_cluster = make_cluster()
    clean = run_mpi_job(clean_cluster, clean_cluster.compute_nodes()[:2], spec)
    assert noisy.duration / clean.duration == pytest.approx(1.0 / 0.9, rel=0.02)


def test_noise_amplification_grows_with_ranks():
    """The same per-node noise costs more at scale: the barrier waits for
    the slowest rank (averaged over seeds to tame sampling noise)."""
    noise = NoiseProfile(cpu_fraction=0.0, interrupt_rate_hz=0.5, interrupt_cost=0.01)
    spec = MpiJobSpec(job_id="amp", iterations=40, work_per_iteration=0.2)

    def overhead(ranks: int) -> float:
        total = 0.0
        for seed in (0, 1, 2):
            cluster = make_cluster(seed=seed)
            noisy = run_mpi_job(cluster, cluster.compute_nodes()[:ranks], spec, noise=noise)
            clean_cluster = make_cluster(seed=seed)
            clean = run_mpi_job(clean_cluster, clean_cluster.compute_nodes()[:ranks], spec)
            total += noisy.duration / clean.duration - 1.0
        return total / 3

    assert overhead(8) > 1.5 * overhead(1)


def test_noise_profile_from_kernel_timings():
    t = KernelTimings()
    noise = NoiseProfile.from_kernel(t)
    assert noise.cpu_fraction == t.daemon_cpu_fraction
    assert noise.interrupt_rate_hz == pytest.approx(1 / 5.0 + 1 / 30.0)
    assert NoiseProfile.none().interrupt_rate_hz == 0.0


def test_simulated_table4_shape():
    from repro.experiments.linpack_impact import run_simulated_table4

    rows = run_simulated_table4(cpu_counts=(4, 64), iterations=15)
    assert all(0.0 < r["overhead_pct"] < 2.5 for r in rows)
    assert rows[1]["overhead_pct"] > rows[0]["overhead_pct"]


def test_deterministic_for_seed():
    spec = MpiJobSpec(job_id="det", iterations=5, work_per_iteration=0.1)
    noise = NoiseProfile(cpu_fraction=0.01, interrupt_rate_hz=1.0, interrupt_cost=0.002)

    def run(seed):
        cluster = make_cluster(seed=seed)
        return run_mpi_job(cluster, cluster.compute_nodes()[:4], spec, noise=noise).duration

    assert run(7) == run(7)
    assert run(7) != run(8)
