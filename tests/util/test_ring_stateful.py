"""Stateful property test: the Ring against a model list."""

from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.util import Ring


class RingMachine(RuleBasedStateMachine):
    """Drive Ring mutations and check it always mirrors a plain list."""

    def __init__(self):
        super().__init__()
        self.ring: Ring[int] = Ring()
        self.model: list[int] = []

    @rule(item=st.integers(0, 50))
    def add(self, item):
        if item in self.model:
            try:
                self.ring.add(item)
                raise AssertionError("duplicate add must raise")
            except ValueError:
                pass
        else:
            self.ring.add(item)
            self.model.append(item)

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def remove(self, data):
        item = data.draw(st.sampled_from(self.model))
        self.ring.remove(item)
        self.model.remove(item)

    @invariant()
    def order_matches_model(self):
        assert self.ring.as_list() == self.model
        assert len(self.ring) == len(self.model)

    @invariant()
    def ring_topology_consistent(self):
        if not self.model:
            return
        assert self.ring.head() == self.model[0]
        assert self.ring.second() == self.model[1 % len(self.model)]
        for i, item in enumerate(self.model):
            assert self.ring.position(item) == i
            assert self.ring.successor(item) == self.model[(i + 1) % len(self.model)]
            assert self.ring.predecessor(item) == self.model[(i - 1) % len(self.model)]


TestRingStateful = RingMachine.TestCase
