"""Unit + property tests for statistics helpers."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import RunningStats, percentile, summarize


def test_running_stats_basic():
    s = RunningStats()
    s.extend([1.0, 2.0, 3.0, 4.0])
    assert s.count == 4
    assert s.mean == pytest.approx(2.5)
    assert s.variance == pytest.approx(np.var([1, 2, 3, 4], ddof=1))
    assert s.min == 1.0
    assert s.max == 4.0


def test_running_stats_empty_is_nan():
    s = RunningStats()
    assert math.isnan(s.mean)
    assert math.isnan(s.variance)


def test_running_stats_single_value():
    s = RunningStats()
    s.add(5.0)
    assert s.mean == 5.0
    assert s.variance == 0.0
    assert s.stdev == 0.0


def test_percentile_matches_numpy_linear():
    data = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6]
    for q in (0, 10, 50, 90, 100):
        assert percentile(data, q) == pytest.approx(np.percentile(data, q))


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)
    with pytest.raises(ValueError):
        percentile([1.0], -1)


def test_summarize():
    s = summarize([1.0, 2.0, 3.0])
    assert s.count == 3
    assert s.mean == pytest.approx(2.0)
    assert s.p50 == 2.0
    assert s.min == 1.0 and s.max == 3.0


def test_summarize_empty_raises():
    with pytest.raises(ValueError):
        summarize([])


floats = st.lists(
    st.floats(min_value=-1e9, max_value=1e9, allow_nan=False), min_size=1, max_size=200
)


@given(floats)
def test_property_running_stats_matches_numpy(values):
    s = RunningStats()
    s.extend(values)
    assert s.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-6)
    assert s.min == min(values)
    assert s.max == max(values)


@given(floats, st.floats(min_value=0, max_value=100))
def test_property_percentile_bounded_and_monotone(values, q):
    p = percentile(values, q)
    assert min(values) <= p <= max(values)
    assert percentile(values, 0) == min(values)
    assert percentile(values, 100) == max(values)
