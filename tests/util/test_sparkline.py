"""Sparkline rendering."""

from hypothesis import given
from hypothesis import strategies as st

from repro.util.sparkline import sparkline


def test_empty():
    assert sparkline([]) == ""


def test_monotone_ramp_uses_increasing_blocks():
    line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
    assert line == "▁▂▃▄▅▆▇█"


def test_constant_series_is_flat_midline():
    assert sparkline([5.0, 5.0, 5.0]) == "▄▄▄"


def test_pinned_scale_clamps():
    line = sparkline([-10, 0, 10, 20], lo=0.0, hi=10.0)
    assert line[0] == "▁"  # clamped below
    assert line[-1] == "█"  # clamped above


@given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=50))
def test_property_length_and_alphabet(values):
    line = sparkline(values)
    assert len(line) == len(values)
    assert set(line) <= set("▁▂▃▄▅▆▇█")


def test_extremes_map_to_extreme_blocks():
    line = sparkline([1.0, 9.0, 1.0, 9.0])
    assert line == "▁█▁█"
