"""Unit tests for units helpers and id allocation."""

import pytest

from repro import units
from repro.util import IdAllocator


def test_time_helpers():
    assert units.usec(348) == pytest.approx(348e-6)
    assert units.msec(120) == pytest.approx(0.12)
    assert units.minutes(2) == 120.0
    assert units.hours(1) == 3600.0


def test_size_helpers():
    assert units.kib(1) == 1024
    assert units.mib(2) == 2 * 1024 * 1024


def test_fmt_time_matches_paper_style():
    assert units.fmt_time(0) == "0s"
    assert units.fmt_time(348e-6) == "348us"
    assert units.fmt_time(0.12) == "120ms"
    assert units.fmt_time(30.39) == "30.39s"
    assert units.fmt_time(32.0) == "32.00s"


def test_fmt_time_negative_rejected():
    with pytest.raises(ValueError):
        units.fmt_time(-1)


def test_fmt_bytes():
    assert units.fmt_bytes(0) == "0B"
    assert units.fmt_bytes(512) == "512B"
    assert units.fmt_bytes(1536) == "1.5KiB"
    assert units.fmt_bytes(3 * 1024 * 1024) == "3.0MiB"
    with pytest.raises(ValueError):
        units.fmt_bytes(-1)


def test_id_allocator_sequential():
    alloc = IdAllocator("node")
    assert alloc.next() == "node-1"
    assert alloc.next() == "node-2"


def test_id_allocator_custom_start():
    alloc = IdAllocator("p", start=0)
    assert alloc.next() == "p-0"


def test_id_allocator_empty_prefix_rejected():
    with pytest.raises(ValueError):
        IdAllocator("")
