"""Unit + property tests for the meta-group ring structure."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import Ring


def test_insertion_order_preserved():
    ring = Ring(["p1", "p2", "p3"])
    assert ring.as_list() == ["p1", "p2", "p3"]
    assert len(ring) == 3
    assert "p2" in ring


def test_head_is_leader_second_is_princess():
    ring = Ring(["leader", "princess", "m3"])
    assert ring.head() == "leader"
    assert ring.second() == "princess"


def test_second_falls_back_to_head_when_alone():
    ring = Ring(["solo"])
    assert ring.second() == "solo"


def test_successor_predecessor_wrap():
    ring = Ring(["a", "b", "c"])
    assert ring.successor("c") == "a"
    assert ring.predecessor("a") == "c"
    assert ring.successor("a") == "b"


def test_duplicate_rejected():
    ring = Ring(["a"])
    with pytest.raises(ValueError):
        ring.add("a")


def test_remove_closes_the_gap():
    ring = Ring(["a", "b", "c", "d"])
    ring.remove("b")
    assert ring.as_list() == ["a", "c", "d"]
    assert ring.successor("a") == "c"
    assert ring.predecessor("c") == "a"
    assert ring.position("d") == 2


def test_remove_unknown_raises():
    ring = Ring(["a"])
    with pytest.raises(KeyError):
        ring.remove("zz")


def test_empty_ring_head_raises():
    ring = Ring()
    with pytest.raises(IndexError):
        ring.head()
    with pytest.raises(IndexError):
        ring.second()


def test_leader_failure_promotes_princess():
    """Paper Figure 3 semantics: remove Leader -> Princess becomes head."""
    ring = Ring(["gsd1", "gsd2", "gsd3", "gsd4", "gsd5"])
    ring.remove(ring.head())
    assert ring.head() == "gsd2"
    ring.remove(ring.head())
    assert ring.head() == "gsd3"


unique_names = st.lists(st.integers(), unique=True, min_size=1, max_size=30)


@given(unique_names)
def test_property_successor_chain_visits_all_once(items):
    ring = Ring(items)
    start = ring.head()
    seen = [start]
    cur = ring.successor(start)
    while cur != start:
        seen.append(cur)
        cur = ring.successor(cur)
    assert seen == ring.as_list()


@given(unique_names)
def test_property_successor_predecessor_inverse(items):
    ring = Ring(items)
    for item in items:
        assert ring.predecessor(ring.successor(item)) == item
        assert ring.successor(ring.predecessor(item)) == item


@given(unique_names, st.data())
def test_property_removals_keep_order_subsequence(items, data):
    ring = Ring(items)
    to_remove = data.draw(st.lists(st.sampled_from(items), unique=True, max_size=len(items) - 1))
    for item in to_remove:
        ring.remove(item)
    expected = [i for i in items if i not in to_remove]
    assert ring.as_list() == expected
    for item in expected:
        assert ring.position(item) == expected.index(item)
