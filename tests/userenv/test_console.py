"""Management console (Figure 9): drain / shutdown / start nodes."""

import pytest

from repro.errors import UserEnvError
from repro.sim import Simulator
from repro.userenv.pws.console import (
    ManagementConsole,
    render_console,
    render_jobs,
    render_nodes,
    render_pools,
)
from repro.userenv.pws.server import STATUS, SUBMIT
from tests.userenv.conftest import drive, pws_rpc


@pytest.fixture()
def console(kernel, sim, pws):
    return ManagementConsole(kernel, kernel.construction_tool, "p2c1")


def test_console_requires_pws(kernel):
    plain = ManagementConsole(kernel, kernel.construction_tool, "p0c0")
    # remove pws placement to simulate a cluster without the job manager
    kernel.placement.pop(("pws", "p0"), None)
    with pytest.raises(UserEnvError):
        plain._pws_node()


def test_drain_blocks_new_placements_but_running_jobs_finish(kernel, sim, pws, console):
    reply = pws_rpc(kernel, sim, SUBMIT,
                    {"user": "a", "nodes": 1, "cpus_per_node": 4, "duration": 20.0,
                     "pool": "batch"})
    sim.run(until=sim.now + 2.0)
    victim = pws_rpc(kernel, sim, STATUS, {"job_id": reply["job_id"]})["job"]["assigned_nodes"][0]
    assert drive(sim, console.drain_node(victim))["ok"]
    # New job avoids the drained node.
    reply2 = pws_rpc(kernel, sim, SUBMIT,
                     {"user": "b", "nodes": 1, "cpus_per_node": 4, "duration": 5.0,
                      "pool": "batch"})
    sim.run(until=sim.now + 2.0)
    nodes2 = pws_rpc(kernel, sim, STATUS, {"job_id": reply2["job_id"]})["job"]["assigned_nodes"]
    assert victim not in nodes2
    # The running job on the drained node still completes.
    sim.run(until=sim.now + 30.0)
    assert pws_rpc(kernel, sim, STATUS, {"job_id": reply["job_id"]})["job"]["state"] == "done"


def test_drain_unknown_node(kernel, sim, pws, console):
    reply = drive(sim, console.drain_node("ghost"))
    assert reply["ok"] is False


def test_shutdown_then_start_cycle(kernel, sim, pws, console):
    node = "p1c2"
    drive(sim, console.drain_node(node))
    console.shutdown_node(node)
    assert not kernel.cluster.node(node).up
    sim.run(until=sim.now + 15.0)  # kernel notices the shutdown
    assert kernel.gsd("p1").node_state[node] == "down"

    reply = drive(sim, console.start_node(node))
    assert reply["ok"]
    assert kernel.cluster.node(node).up
    sim.run(until=sim.now + 12.0)
    assert kernel.gsd("p1").node_state[node] == "up"
    # The node is schedulable again.
    job = pws_rpc(kernel, sim, SUBMIT,
                  {"user": "a", "nodes": 9, "cpus_per_node": 1, "duration": 5.0,
                   "pool": "batch"})
    sim.run(until=sim.now + 2.0)
    assert pws_rpc(kernel, sim, STATUS, {"job_id": job["job_id"]})["job"]["state"] == "running"


def test_render_surfaces(kernel, sim, pws, console):
    pws_rpc(kernel, sim, SUBMIT,
            {"user": "a", "nodes": 1, "cpus_per_node": 1, "duration": 50.0, "pool": "batch"})
    sim.run(until=sim.now + 6.0)
    jobs = drive(sim, console.job_summary())
    pools = drive(sim, console.pool_summary())
    nodes = drive(sim, console.node_status())
    text = render_console(jobs, pools, nodes["rows"])
    assert "Management Console" in text
    assert "running:1" in render_jobs(jobs)
    assert "batch" in render_pools(pools)
    assert "p0s0[UP]" in render_nodes(nodes["rows"])


def test_render_empty_surfaces():
    assert render_jobs({}) == "jobs  (none)"
    assert "(no node state yet)" in render_nodes([])
    assert "Console" in render_console(None, None, None)
