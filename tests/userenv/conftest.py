import pytest

from repro.cluster import ClusterSpec, FaultInjector
from repro.kernel import KernelTimings
from repro.sim import Simulator
from repro.userenv.construction import ConstructionTool
from repro.userenv.pws import PoolSpec, install_pws


def drive(sim, signal, max_time=30.0):
    deadline = sim.now + max_time
    while not signal.fired:
        nxt = sim.peek()
        if nxt is None or nxt > deadline:
            break
        sim.step()
    return signal.value if signal.fired else None


@pytest.fixture()
def sim():
    return Simulator(seed=21)


@pytest.fixture()
def kernel(sim):
    """3 partitions x (server + backup + 3 computes); short heartbeats so
    fault-tolerance paths run quickly in tests."""
    tool = ConstructionTool(sim)
    k = tool.build(
        ClusterSpec.build(partitions=3, computes=3),
        timings=KernelTimings(heartbeat_interval=5.0),
    )
    k.construction_tool = tool  # convenience for tests
    sim.run(until=6.0)  # detectors have exported at least once
    return k


@pytest.fixture()
def injector(kernel):
    return FaultInjector(kernel.cluster)


@pytest.fixture()
def pws(kernel, sim):
    """PWS with two pools: batch (p0+p1 computes/backups), interactive (p2)."""
    computes = kernel.cluster.compute_nodes()
    batch = [n for n in computes if n.startswith(("p0", "p1"))]
    interactive = [n for n in computes if n.startswith("p2")]
    server = install_pws(
        kernel,
        [PoolSpec("batch", batch), PoolSpec("interactive", interactive, policy="sjf")],
    )
    sim.run(until=sim.now + 2.0)  # server ready (inventory + subscriptions)
    return server


def pws_rpc(kernel, sim, mtype, payload, timeout=5.0):
    node = kernel.placement[("pws", "p0")]
    sig = kernel.cluster.transport.rpc("p0c0", node, "pws", mtype, payload, timeout=timeout)
    return drive(sim, sig, max_time=timeout + 1)
