"""End-to-end authenticated job submission (security service + PWS)."""

import pytest

from repro.kernel.security import acl
from repro.userenv.pws import PoolSpec, install_pws
from repro.userenv.pws.server import CANCEL, STATUS, SUBMIT
from tests.userenv.conftest import drive, pws_rpc


@pytest.fixture()
def secure_pws(kernel, sim):
    sec = kernel.security_service()
    sec.add_user("alice", "pw-a", [acl.ROLE_SCIENTIFIC])
    sec.add_user("bob", "pw-b", [acl.ROLE_BUSINESS])  # not allowed to submit
    server = install_pws(
        kernel, [PoolSpec("default", kernel.cluster.compute_nodes())], require_auth=True
    )
    sim.run(until=sim.now + 2.0)
    return server


def login(kernel, sim, user, password):
    reply = drive(sim, kernel.client("p2c0").authenticate(user, password))
    assert reply["ok"]
    return reply["token"]


def job_payload(token=None, **over):
    payload = {"nodes": 1, "cpus_per_node": 1, "duration": 20.0, "pool": "default"}
    payload.update(over)
    if token is not None:
        payload["token"] = token
    return payload


def test_authorized_user_can_submit_and_runs_as_token_identity(kernel, sim, secure_pws):
    token = login(kernel, sim, "alice", "pw-a")
    reply = pws_rpc(kernel, sim, SUBMIT, job_payload(token, user="impostor"))
    assert reply["ok"]
    status = pws_rpc(kernel, sim, STATUS, {"job_id": reply["job_id"]})
    # The authenticated identity wins over the claimed user field.
    assert status["job"]["spec"]["user"] == "alice"
    sim.run(until=sim.now + 30.0)
    assert pws_rpc(kernel, sim, STATUS, {"job_id": reply["job_id"]})["job"]["state"] == "done"


def test_missing_token_rejected(kernel, sim, secure_pws):
    reply = pws_rpc(kernel, sim, SUBMIT, job_payload())
    assert reply["ok"] is False
    assert "authentication failed" in reply["error"]
    assert sim.trace.counter("pws.auth_rejects") == 1


def test_garbage_token_rejected(kernel, sim, secure_pws):
    reply = pws_rpc(kernel, sim, SUBMIT, job_payload(token="garbage"))
    assert reply["ok"] is False
    assert "authentication failed" in reply["error"]


def test_wrong_role_rejected(kernel, sim, secure_pws):
    token = login(kernel, sim, "bob", "pw-b")
    reply = pws_rpc(kernel, sim, SUBMIT, job_payload(token))
    assert reply["ok"] is False
    assert "not authorized" in reply["error"]


def test_expired_token_rejected(kernel, sim, secure_pws):
    reply = drive(sim, kernel.client("p2c0").authenticate("alice", "pw-a"))
    # Re-authenticate with a tiny ttl via the raw interface.
    sig = kernel.cluster.transport.rpc(
        "p2c0", kernel.placement[("security", "p0")], "security", "sec.authenticate",
        {"user": "alice", "password": "pw-a", "ttl": 1.0},
    )
    token = drive(sim, sig)["token"]
    sim.run(until=sim.now + 5.0)  # token expires
    reply = pws_rpc(kernel, sim, SUBMIT, job_payload(token))
    assert reply["ok"] is False
    assert "expired" in reply["error"]


def test_cancel_requires_authorization(kernel, sim, secure_pws):
    token = login(kernel, sim, "alice", "pw-a")
    reply = pws_rpc(kernel, sim, SUBMIT, job_payload(token, duration=500.0))
    job_id = reply["job_id"]
    sim.run(until=sim.now + 2.0)
    denied = pws_rpc(kernel, sim, CANCEL, {"job_id": job_id})
    assert denied["ok"] is False
    allowed = pws_rpc(kernel, sim, CANCEL, {"job_id": job_id, "token": token})
    assert allowed["ok"] is True


def test_auth_disabled_by_default(kernel, sim, pws):
    reply = pws_rpc(kernel, sim, SUBMIT,
                    {"user": "anon", "nodes": 1, "cpus_per_node": 1,
                     "duration": 5.0, "pool": "batch"})
    assert reply["ok"]
