"""Business application runtime: deploy, balance, self-heal, availability."""

import pytest

from repro.errors import UserEnvError
from repro.userenv.business import BizAppSpec, TierSpec, install_business_runtime


@pytest.fixture()
def runtime(kernel, sim):
    rt = install_business_runtime(kernel, partition_id="p1")
    sim.run(until=sim.now + 2.0)
    return rt


def shop():
    return BizAppSpec(name="shop", tiers=(TierSpec("web", 3, cpus=1), TierSpec("db", 1, cpus=2)))


def test_spec_validation():
    with pytest.raises(UserEnvError):
        BizAppSpec(name="", tiers=(TierSpec("web", 1),))
    with pytest.raises(UserEnvError):
        BizAppSpec(name="x", tiers=())
    with pytest.raises(UserEnvError):
        BizAppSpec(name="x", tiers=(TierSpec("a", 1), TierSpec("a", 1)))
    with pytest.raises(UserEnvError):
        TierSpec("t", 0)


def test_deploy_starts_all_replicas(kernel, sim, runtime):
    runtime.deploy(shop())
    sim.run(until=sim.now + 3.0)
    status = runtime.app_status("shop")
    assert status["serving"]
    assert status["tiers"] == {"web": 3, "db": 1}
    # Replicas occupy real CPUs on real nodes.
    nodes = {r.node for r in runtime.apps["shop"].replicas}
    assert all(kernel.cluster.node(n).busy_cpus > 0 for n in nodes)


def test_load_balancer_round_robin(kernel, sim, runtime):
    runtime.deploy(shop())
    sim.run(until=sim.now + 3.0)
    targets = [runtime.route("shop", "web") for _ in range(6)]
    assert len(set(targets)) == 3  # spread over all three replicas
    assert targets[:3] == targets[3:]  # stable rotation


def test_route_unknown_app_or_dead_tier(kernel, sim, runtime):
    with pytest.raises(UserEnvError):
        runtime.route("ghost", "web")


def test_node_failure_heals_replicas(kernel, sim, runtime, injector):
    runtime.deploy(shop())
    sim.run(until=sim.now + 3.0)
    victim = next(r.node for r in runtime.apps["shop"].replicas if r.tier == "web")
    injector.crash_node(victim)
    sim.run(until=sim.now + 30.0)  # detect + diagnose + NODE_FAILURE event + heal
    status = runtime.app_status("shop")
    assert status["tiers"]["web"] == 3
    assert all(r.node != victim for r in runtime.apps["shop"].replicas if r.healthy)
    assert sim.trace.counter("bizrt.heals") >= 1


def test_replica_process_failure_heals(kernel, sim, runtime, injector):
    runtime.deploy(shop())
    sim.run(until=sim.now + 3.0)
    replica = runtime.apps["shop"].replicas[0]
    injector.kill_process(replica.node, f"job.{replica.job_id}")
    sim.run(until=sim.now + 5.0)  # APP_FAILED event -> heal
    status = runtime.app_status("shop")
    assert status["tiers"]["web"] == 3


def test_availability_accounting(kernel, sim, runtime, injector):
    app = BizAppSpec(name="fragile", tiers=(TierSpec("db", 1, cpus=2),))
    runtime.deploy(app)
    sim.run(until=sim.now + 3.0)
    assert runtime.app_status("fragile")["availability"] > 0.9
    replica = runtime.apps["fragile"].replicas[0]
    injector.crash_node(replica.node)
    sim.run(until=sim.now + 60.0)
    status = runtime.app_status("fragile")
    assert status["serving"]  # healed
    assert 0.0 < status["availability"] < 1.0  # downtime was recorded


def test_deploy_via_rpc_interface(kernel, sim, runtime):
    from tests.userenv.conftest import drive

    sig = kernel.cluster.transport.rpc(
        "p0c0", runtime.node_id, "bizrt", "bizrt.deploy",
        {"name": "crm", "tiers": [{"name": "web", "replicas": 2, "cpus": 1}]},
    )
    assert drive(sim, sig)["ok"]
    sim.run(until=sim.now + 3.0)
    sig = kernel.cluster.transport.rpc("p0c0", runtime.node_id, "bizrt", "bizrt.status", {})
    reply = drive(sim, sig)
    assert reply["apps"]["crm"]["serving"]


def test_duplicate_deploy_rejected(kernel, sim, runtime):
    from tests.userenv.conftest import drive

    runtime.deploy(shop())
    sig = kernel.cluster.transport.rpc(
        "p0c0", runtime.node_id, "bizrt", "bizrt.deploy",
        {"name": "shop", "tiers": [{"name": "web", "replicas": 1, "cpus": 1}]},
    )
    assert drive(sim, sig)["ok"] is False
