"""Regression tests for three business-runtime bugs the serving
campaign exposed.

1. A spawn that fails because its node died mid-flight must not refund
   capacity into the dead node's free count (the rebuild at
   NODE_RECOVERY would double-count it), and the orphaned replica must
   be re-placed once capacity returns.
2. ``_down_since`` / ``alerted_down`` must ride the checkpoint: a
   runtime restart mid-outage must neither restart the outage clock nor
   forget that an SLA-violated alert is pending its restore.
3. ``_startup`` must re-subscribe to failure events *before* reconciling
   the registry: a replica killed in the old subscribe-last window
   stayed phantom-healthy forever.
"""

import pytest

from repro.cluster import ClusterSpec, FaultInjector
from repro.kernel import KernelTimings
from repro.sim import Simulator
from repro.userenv.business import BizAppSpec, TierSpec, install_business_runtime
from repro.userenv.construction import ConstructionTool


def _repair_node(kernel, injector, node):
    """Boot a crashed node and restart its per-node kernel services."""
    injector.boot_node(node)
    for svc in ("ppm", "detector", "wd"):
        if not kernel.cluster.hostos(node).process_alive(svc):
            kernel.start_service(svc, node)


def _step_until_records(sim, category, count, max_time):
    """Single-step the simulator until `category` has `count` records,
    so an injection lands exactly at the mark, not some time after."""
    deadline = sim.now + max_time
    while len(sim.trace.records(category)) < count:
        nxt = sim.peek()
        if nxt is None or nxt > deadline:
            raise AssertionError(
                f"{category} did not reach {count} records within {max_time}s")
        sim.step()


def test_failed_spawn_on_dead_node_leaks_no_capacity():
    """Crash the only worker while a scale-up spawn is in flight: the
    failed spawn must not refund into the dead node, and after recovery
    the free count reconciles exactly and both replicas come back."""
    sim = Simulator(seed=11)
    tool = ConstructionTool(sim)
    kernel = tool.build(
        ClusterSpec.build(partitions=2, computes=2),
        # Slow app startup so the crash provably lands inside the spawn.
        timings=KernelTimings(heartbeat_interval=5.0,
                              extra={"spawn.bizapp": 10.0}),
    )
    sim.run(until=6.0)
    injector = FaultInjector(kernel.cluster)
    worker = "p0c0"
    rt = install_business_runtime(kernel, worker_nodes=[worker], partition_id="p0")
    sim.run(until=sim.now + 2.0)

    rt.deploy(BizAppSpec(name="shop", tiers=(TierSpec("web", 1, cpus=1),)))
    sim.run(until=sim.now + 15.0)  # 10s spawn + rpc
    assert rt.app_status("shop")["tiers"]["web"] == 1
    assert rt.capacity_audit()["drift"] == 0

    rt.scale("shop", "web", 2)     # second spawn now sleeping 10s
    sim.run(until=sim.now + 2.0)
    injector.crash_node(worker)    # dies mid-spawn
    sim.run(until=sim.now + 25.0)  # detection + spawn-rpc timeout settle
    # Both replicas are waiting for capacity; nothing placed anywhere.
    assert all(r.node is None and not r.healthy
               for r in rt.apps["shop"].replicas)

    _repair_node(kernel, injector, worker)
    sim.run(until=sim.now + 30.0)  # NODE_RECOVERY -> retry -> respawn

    status = rt.app_status("shop")
    assert status["serving"] and status["tiers"]["web"] == 2
    audit = rt.capacity_audit()
    assert audit["drift"] == 0, audit
    node_row = audit["nodes"][worker]
    assert node_row["capacity"] == node_row["free"] + node_row["placed"]
    for replica in rt.apps["shop"].replicas:
        assert kernel.cluster.hostos(replica.node).process_alive(
            f"job.{replica.job_id}")


def test_outage_clock_survives_runtime_restart(kernel, sim, injector):
    """An app that is mid-outage when the runtime itself restarts keeps
    its original outage start and its pending SLA alert: downtime spans
    the whole node outage, and the restore transition still fires."""
    rt = install_business_runtime(kernel, worker_nodes=["p1c0"], partition_id="p1")
    sim.run(until=sim.now + 2.0)
    rt.deploy(BizAppSpec(name="solo", tiers=(TierSpec("db", 1, cpus=2),)))
    sim.run(until=sim.now + 3.0)
    assert rt.app_status("solo")["serving"]
    # The deploy ramp (deploy -> first healthy replica) already counts
    # as downtime; baseline it out of the outage arithmetic below.
    base_downtime = rt.apps["solo"].downtime

    injector.crash_node("p1c0")
    sim.run(until=sim.now + 15.0)  # detection -> sla down (checkpointed)
    down_recs = sim.trace.records("bizrt.sla", app="solo")
    assert [r["transition"] for r in down_recs] == ["down"]
    t_down = down_recs[0].time

    # The runtime dies mid-outage; GSD restarts a fresh instance that
    # reloads the registry from its checkpoint.
    injector.kill_process(rt.node_id, "bizrt")
    sim.run(until=sim.now + 12.0)
    fresh = kernel.live_daemon("bizrt", kernel.placement[("bizrt", "p1")])
    assert fresh is not rt and fresh.alive
    state = fresh.apps["solo"]
    assert state._down_since == pytest.approx(t_down)
    assert state.alerted_down

    _repair_node(kernel, injector, "p1c0")
    sim.run(until=sim.now + 30.0)

    recs = sim.trace.records("bizrt.sla", app="solo")
    assert [r["transition"] for r in recs] == ["down", "up"]
    t_up = recs[-1].time
    # Downtime covers the full detection->restore interval, including
    # the stretch where the runtime itself was down; the pre-fix code
    # restarted the clock at reload and swallowed the restore event.
    assert fresh.apps["solo"].downtime == pytest.approx(
        base_downtime + (t_up - t_down))
    assert t_up - t_down > 15.0
    assert not fresh.apps["solo"].alerted_down


def test_replica_killed_during_startup_window_is_healed(kernel, sim, injector):
    """Migrate the runtime across nodes (server-node crash), then kill a
    replica process at the exact instant the registry reload finishes.
    With subscribe-first startup the failure event reaches the new
    instance; the pre-fix subscribe-last ordering delivered it to the
    dead old node and left a phantom-healthy replica forever."""
    workers = ["p1c0", "p1c1", "p1c2"]
    rt = install_business_runtime(kernel, worker_nodes=workers, partition_id="p1")
    sim.run(until=sim.now + 2.0)
    rt.deploy(BizAppSpec(name="shop", tiers=(TierSpec("web", 3, cpus=1),)))
    sim.run(until=sim.now + 3.0)
    marks_before = len(sim.trace.records("bizrt.state_recovered"))

    # Kill the server node: the backup GSD takes the partition over and
    # restarts the service group -- ES (with its checkpointed
    # subscription registry still pointing at the dead node) and bizrt.
    injector.crash_node(rt.node_id)
    _step_until_records(sim, "bizrt.state_recovered", marks_before + 1,
                        max_time=120.0)
    fresh = kernel.live_daemon("bizrt", kernel.placement[("bizrt", "p1")])
    assert fresh is not rt and fresh.node_id != rt.node_id

    # The reload just re-adopted this replica as healthy; kill it now,
    # inside what used to be the reconcile-before-subscribe window.
    victim = next(r for r in fresh.apps["shop"].replicas if r.healthy)
    injector.kill_process(victim.node, f"job.{victim.job_id}")
    sim.run(until=sim.now + 30.0)

    status = fresh.app_status("shop")
    assert status["serving"] and status["tiers"]["web"] == 3
    for replica in fresh.apps["shop"].replicas:
        if replica.healthy:
            assert kernel.cluster.hostos(replica.node).process_alive(
                f"job.{replica.job_id}")
