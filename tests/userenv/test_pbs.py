"""PBS baseline: polling behavior, FIFO scheduling, no HA."""

import pytest

from repro.userenv.pbs import PBSServer
from repro.userenv.pbs.server import CANCEL, PORT, STATUS, SUBMIT
from tests.userenv.conftest import drive


@pytest.fixture()
def pbs(kernel, sim):
    nodes = kernel.cluster.compute_nodes()
    server = PBSServer(kernel, "p0s0", nodes=nodes, poll_interval=5.0)
    kernel.registry.register("pbs", lambda k, n: server)
    kernel.start_service("pbs", "p0s0")
    sim.run(until=sim.now + 6.0)  # first poll cycle completes
    return server


def pbs_rpc(kernel, sim, mtype, payload, timeout=5.0):
    sig = kernel.cluster.transport.rpc("p0c0", "p0s0", PORT, mtype, payload, timeout=timeout)
    return drive(sim, sig, max_time=timeout + 1)


def test_submit_run_complete(kernel, sim, pbs):
    reply = pbs_rpc(kernel, sim, SUBMIT,
                    {"user": "a", "nodes": 2, "cpus_per_node": 2, "duration": 8.0})
    assert reply["ok"]
    job_id = reply["job_id"]
    sim.run(until=sim.now + 30.0)  # a few poll cycles
    status = pbs_rpc(kernel, sim, STATUS, {"job_id": job_id})
    assert status["job"]["state"] == "done"


def test_dispatch_waits_for_poll_cycle(kernel, sim, pbs):
    """PBS only schedules during its polling pass — submission latency is
    bounded below by the poll interval (unlike event-driven PWS)."""
    reply = pbs_rpc(kernel, sim, SUBMIT,
                    {"user": "a", "nodes": 1, "cpus_per_node": 1, "duration": 100.0})
    job_id = reply["job_id"]
    status = pbs_rpc(kernel, sim, STATUS, {"job_id": job_id})
    assert status["job"]["state"] == "queued"  # not dispatched synchronously
    sim.run(until=sim.now + 7.0)
    status = pbs_rpc(kernel, sim, STATUS, {"job_id": job_id})
    assert status["job"]["state"] == "running"


def test_polling_traffic_scales_with_nodes(kernel, sim, pbs):
    before = sim.trace.counter("pbs.polls")
    sim.run(until=sim.now + 25.0)  # 5 cycles x 15 nodes
    polls = sim.trace.counter("pbs.polls") - before
    assert polls >= 4 * len(pbs.managed_nodes)


def test_cancel(kernel, sim, pbs):
    reply = pbs_rpc(kernel, sim, SUBMIT,
                    {"user": "a", "nodes": 1, "cpus_per_node": 1, "duration": 500.0})
    sim.run(until=sim.now + 7.0)
    reply2 = pbs_rpc(kernel, sim, CANCEL, {"job_id": reply["job_id"]})
    assert reply2["ok"]
    sim.run(until=sim.now + 2.0)
    assert all(kernel.cluster.node(n).busy_cpus == 0 for n in pbs.managed_nodes)


def test_fifo_head_of_line_blocking(kernel, sim, pbs):
    # A job that can never fit blocks everything behind it.
    huge = pbs_rpc(kernel, sim, SUBMIT,
                   {"user": "a", "nodes": 99, "cpus_per_node": 1, "duration": 10.0})
    small = pbs_rpc(kernel, sim, SUBMIT,
                    {"user": "b", "nodes": 1, "cpus_per_node": 1, "duration": 10.0})
    sim.run(until=sim.now + 20.0)
    assert pbs_rpc(kernel, sim, STATUS, {"job_id": huge["job_id"]})["job"]["state"] == "queued"
    assert pbs_rpc(kernel, sim, STATUS, {"job_id": small["job_id"]})["job"]["state"] == "queued"


def test_no_ha_server_death_kills_job_management(kernel, sim, pbs, injector):
    """The §5.4 contrast: PBS has no service group behind it."""
    reply = pbs_rpc(kernel, sim, SUBMIT,
                    {"user": "a", "nodes": 1, "cpus_per_node": 1, "duration": 50.0})
    sim.run(until=sim.now + 7.0)
    injector.kill_process("p0s0", "pbs")
    sim.run(until=sim.now + 60.0)
    # Nobody restarts it; status RPCs go unanswered.
    assert not kernel.cluster.hostos("p0s0").process_alive("pbs")
    assert pbs_rpc(kernel, sim, STATUS, {"job_id": reply["job_id"]}) is None


def test_node_failure_detected_only_via_poll_and_fails_job(kernel, sim, pbs, injector):
    reply = pbs_rpc(kernel, sim, SUBMIT,
                    {"user": "a", "nodes": 1, "cpus_per_node": 2, "duration": 300.0})
    job_id = reply["job_id"]
    sim.run(until=sim.now + 7.0)
    node = pbs_rpc(kernel, sim, STATUS, {"job_id": job_id})["job"]["assigned_nodes"][0]
    injector.crash_node(node)
    sim.run(until=sim.now + 15.0)  # next poll notices
    status = pbs_rpc(kernel, sim, STATUS, {"job_id": job_id})
    assert status["job"]["state"] == "failed"  # no requeue logic in PBS
