"""Business runtime HA: the app registry survives runtime restarts."""

import pytest

from repro.userenv.business import BizAppSpec, TierSpec, install_business_runtime


@pytest.fixture()
def runtime(kernel, sim):
    rt = install_business_runtime(kernel, partition_id="p1")
    sim.run(until=sim.now + 2.0)
    rt.deploy(BizAppSpec(name="shop", tiers=(TierSpec("web", 3, cpus=1),)))
    sim.run(until=sim.now + 2.0)
    return rt


def test_runtime_restart_readopts_running_replicas(kernel, sim, runtime, injector):
    nodes_before = sorted(r.node for r in runtime.apps["shop"].replicas if r.healthy)
    injector.kill_process(runtime.node_id, "bizrt")
    sim.run(until=sim.now + 10.0)  # GSD restarts the runtime
    fresh = kernel.live_daemon("bizrt", kernel.placement[("bizrt", "p1")])
    assert fresh is not runtime and fresh.alive
    assert sim.trace.records("bizrt.state_recovered")
    assert "shop" in fresh.apps
    status = fresh.app_status("shop")
    assert status["serving"] and status["tiers"]["web"] == 3
    # The replica *processes* never died — same placements, no restarts.
    nodes_after = sorted(r.node for r in fresh.apps["shop"].replicas if r.healthy)
    assert nodes_after == nodes_before
    # And routing works on the fresh instance.
    assert fresh.route("shop", "web") in nodes_after


def test_restarted_runtime_still_heals(kernel, sim, runtime, injector):
    injector.kill_process(runtime.node_id, "bizrt")
    sim.run(until=sim.now + 10.0)
    fresh = kernel.live_daemon("bizrt", kernel.placement[("bizrt", "p1")])
    victim = next(r for r in fresh.apps["shop"].replicas if r.healthy)
    injector.crash_node(victim.node)
    sim.run(until=sim.now + 30.0)
    assert fresh.app_status("shop")["tiers"]["web"] == 3


def test_replicas_lost_during_runtime_outage_are_detected(kernel, sim, runtime, injector):
    """A replica that dies while the runtime is down is re-adopted as
    unhealthy and healed after the restart."""
    victim = next(r for r in runtime.apps["shop"].replicas if r.healthy)
    injector.kill_process(runtime.node_id, "bizrt")
    injector.kill_process(victim.node, f"job.{victim.job_id}")  # event lost: no consumer
    sim.run(until=sim.now + 10.0)  # GSD restarts the runtime
    fresh = kernel.live_daemon("bizrt", kernel.placement[("bizrt", "p1")])
    sim.run(until=sim.now + 5.0)
    # The dead replica was noticed at reload (process-table check) and
    # re-placed during startup: web tier back to full strength, and no
    # phantom-healthy entry pointing at the dead process.
    status = fresh.app_status("shop")
    assert status["tiers"]["web"] == 3
    for replica in fresh.apps["shop"].replicas:
        if replica.healthy:
            assert kernel.cluster.hostos(replica.node).process_alive(f"job.{replica.job_id}")