"""GridView monitoring: refreshes, events, rendering, failure tolerance."""

import pytest

from repro.userenv.monitoring import install_gridview, render_events, render_snapshot


@pytest.fixture()
def gridview(kernel, sim):
    gv = install_gridview(kernel, refresh_interval=10.0)
    sim.run(until=sim.now + 12.0)  # at least one refresh
    return gv


def test_refresh_collects_every_node(kernel, sim, gridview):
    snap = gridview.latest
    assert snap is not None
    assert snap.node_count == kernel.cluster.size
    assert snap.nodes_reporting == kernel.cluster.size
    assert snap.partitions_missing == []
    assert set(snap.per_node) == set(kernel.cluster.nodes)


def test_averages_match_common_load_profile(kernel, sim, gridview):
    """Figure 6's banner: ~5.5% CPU, ~18.6% mem, <1% swap under common load."""
    sim.run(until=sim.now + 60.0)
    snap = gridview.latest
    assert 2.0 < snap.avg_cpu_pct < 10.0
    assert 15.0 < snap.avg_mem_pct < 23.0
    assert 0.0 <= snap.avg_swap_pct < 2.0


def test_refresh_marks_latency(kernel, sim, gridview):
    marks = sim.trace.records("gridview.refresh")
    assert marks
    assert all(m["rows"] == kernel.cluster.size for m in marks)
    assert all(0 < m["latency"] < 1.0 for m in marks)


def test_receives_failure_events(kernel, sim, gridview, injector):
    injector.crash_node("p2c0")
    sim.run(until=sim.now + 15.0)  # detection + diagnosis + event push
    types = [e.type for e in gridview.recent_events()]
    assert "node.failure" in types


def test_snapshot_reflects_down_node(kernel, sim, gridview, injector):
    injector.crash_node("p2c0")
    sim.run(until=sim.now + 30.0)
    snap = gridview.latest
    assert snap.nodes_down == 1


def test_dead_bulletin_degrades_gracefully(kernel, sim, injector):
    """Figure 5's resilience claim: one dead DB hides one partition only —
    and the GSD brings it back."""
    # A fast-refreshing GridView instance so the outage window is observed.
    fast = install_gridview(kernel, node_id="p2b0", refresh_interval=0.5)
    sim.run(until=sim.now + 2.0)
    injector.kill_process(kernel.placement[("db", "p1")], "db")
    sim.run(until=sim.now + 3.0)  # a few refreshes before the GSD heals it
    missing = [m for m in sim.trace.records("gridview.refresh") if m["missing"]]
    assert missing  # some refresh saw exactly one partition missing
    assert all(m["missing"] == 1 for m in missing)
    sim.run(until=sim.now + 30.0)  # GSD restarted the DB; detectors refill
    assert fast.latest.partitions_missing == []


def test_render_snapshot_contains_figure6_fields(gridview):
    text = render_snapshot(gridview.latest)
    assert "avg CPU" in text and "avg MEM" in text and "avg SWAP" in text
    assert "p0c0" in text


def test_render_events(kernel, sim, gridview, injector):
    assert render_events([]) == "(no events)"
    injector.crash_node("p2c1")
    sim.run(until=sim.now + 15.0)
    text = render_events(gridview.recent_events())
    assert "node.failure" in text
