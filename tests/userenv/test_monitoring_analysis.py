"""Performance analysis + fault analysis (paper §3 management tools)."""

import pytest

from repro.sim.trace import TraceRecord
from repro.userenv.monitoring import (
    alerts,
    critical_path,
    fault_analysis,
    health_report,
    install_gridview,
    messaging_report,
    performance_report,
    span_tree,
)
from repro.userenv.monitoring.gridview import ClusterSnapshot


def snap(t, cpu, mem=20.0, swap=0.5, down=0):
    return ClusterSnapshot(
        time=t, node_count=10, nodes_reporting=10 - down, nodes_down=down,
        avg_cpu_pct=cpu, avg_mem_pct=mem, avg_swap_pct=swap,
    )


def test_performance_report_levels_and_slope():
    snaps = [snap(0.0, 10.0), snap(60.0, 20.0), snap(120.0, 30.0)]
    report = performance_report(snaps)
    assert report["samples"] == 3
    assert report["window_s"] == 120.0
    assert report["cpu"].mean == pytest.approx(20.0)
    assert report["cpu"].slope_per_min == pytest.approx(10.0)  # +10%/min
    assert report["mem"].slope_per_min == pytest.approx(0.0)
    assert report["worst_nodes_down"] == 0


def test_performance_report_single_sample():
    report = performance_report([snap(5.0, 42.0)])
    assert report["cpu"].mean == 42.0
    assert report["cpu"].slope_per_min == 0.0


def test_performance_report_empty_rejected():
    with pytest.raises(ValueError):
        performance_report([])


def test_fault_analysis_incidents_and_mttr():
    from repro.kernel.events.types import Event

    def ev(t, type_, **data):
        return Event(event_id=f"e{t}", type=type_, source="x", partition="p0", time=t, data=data)

    events = [
        ev(10.0, "node.failure", node="n1"),
        ev(40.0, "node.recovery", node="n1"),
        ev(50.0, "service.failure", node="n2", service="es"),
        ev(52.0, "service.recovery", node="n2", service="es"),
        ev(60.0, "node.failure", node="n1"),  # stays open
    ]
    report = fault_analysis(events)
    assert report["event_counts"]["node.failure"] == 2
    assert report["open_incidents"] == 1
    assert report["mttr_s"]["node"] == pytest.approx(30.0)
    assert report["mttr_s"]["service"] == pytest.approx(2.0)
    assert report["top_failing_nodes"][0] == ("n1", 2)


def test_fault_analysis_empty():
    report = fault_analysis([])
    assert report["event_counts"] == {}
    assert report["open_incidents"] == 0


def test_end_to_end_analysis_over_live_gridview(kernel, sim, injector):
    gv = install_gridview(kernel, refresh_interval=5.0)
    sim.run(until=sim.now + 25.0)
    injector.crash_node("p2c0")
    sim.run(until=sim.now + 30.0)
    kernel.construction_tool.recover_node("p2c0")
    sim.run(until=sim.now + 30.0)

    perf = performance_report(list(gv.snapshots))
    assert perf["samples"] >= 5
    assert 0.0 < perf["cpu"].mean < 30.0
    assert perf["worst_nodes_down"] == 1

    faults = fault_analysis(list(gv.event_log))
    assert faults["event_counts"].get("node.failure", 0) >= 1
    assert "node" in faults["mttr_s"]
    assert faults["top_failing_nodes"][0][0] == "p2c0"


def test_messaging_report_surfaces_spine_counters(kernel, sim):
    from repro.sim import Simulator

    empty = messaging_report(Simulator(seed=1).trace)
    assert empty["es"]["forward_batches"] == 0
    assert empty["es"]["events_per_batch"] == 0.0  # no division blow-up

    for i in range(6):  # burst: fans out to both remote partitions, batched
        sig = kernel.client("p0c0").publish("custom.tick", {"i": i})
        while not sig.fired:
            sim.step()
    sim.run(until=sim.now + 2.0)
    report = messaging_report(sim.trace)
    assert report["es"]["published"] >= 6
    assert report["es"]["delivered"] == sim.trace.counter("es.delivered")
    assert report["es"]["forward_batched_events"] >= 12  # 6 events x 2 peers
    assert 0 < report["es"]["forward_batches"] < report["es"]["forward_batched_events"]
    assert report["es"]["events_per_batch"] > 1.0
    assert report["rpc"]["retries"] == sim.trace.counter("rpc.retries")
    assert report["rpc"]["inflight_queued"] == sim.trace.counter("rpc.inflight_queued")


def test_messaging_report_outbox_drops_and_latency_quantiles():
    from repro.sim import Simulator

    sim = Simulator(seed=1)
    sim.trace.count("es.outbox_dropped", 3)
    sim.trace.observe("rpc.call", 0.004)
    sim.trace.observe("rpc.call", 0.012)
    report = messaging_report(sim.trace)
    assert report["es"]["outbox_dropped"] == 3
    summary = report["latency"]["rpc.call"]
    assert summary["count"] == 2 and summary["p95"] >= summary["p50"] > 0.0
    # No histograms -> no latency section at all.
    assert "latency" not in messaging_report(Simulator(seed=2).trace)


# -- causal span analysis -----------------------------------------------------


def span_rec(end, category, sid, parent="", start=0.0, **fields):
    return TraceRecord(time=end, category=category, fields={
        "span_id": sid, "parent_id": parent, "start": start,
        "duration": end - start, **fields})


def test_span_tree_links_children_and_roots_orphans():
    records = [
        span_rec(10.0, "gsd.failover", "sp1"),
        span_rec(4.0, "gsd.diagnose", "sp2", parent="sp1", start=1.0),
        span_rec(9.0, "gsd.recover", "sp3", parent="sp1", start=4.0),
        # Parent never closed (process died mid-span): treated as a root.
        span_rec(2.0, "es.deliver", "sp9", parent="sp7", start=1.5),
        # A point mark with a span_id but no duration is not a span close.
        TraceRecord(time=0.5, category="failure.detected", fields={"span_id": "sp1"}),
    ]
    tree = span_tree(records)
    assert set(tree["spans"]) == {"sp1", "sp2", "sp3", "sp9"}
    assert tree["roots"] == ["sp1", "sp9"]  # sorted by start time
    assert tree["children"]["sp1"] == ["sp2", "sp3"]


def test_critical_path_descends_into_the_gating_child():
    records = [
        span_rec(10.0, "gsd.failover", "sp1"),
        span_rec(4.0, "gsd.diagnose", "sp2", parent="sp1", start=0.0),
        span_rec(9.0, "gsd.recover", "sp3", parent="sp1", start=1.0),
        span_rec(8.0, "rpc.call", "sp4", parent="sp3", start=2.0),
        # Async fan-out closing *after* the root cannot have gated it.
        span_rec(12.0, "es.publish", "sp5", parent="sp1", start=9.5),
    ]
    path = critical_path(records)
    assert [r["span_id"] for r in path] == ["sp1", "sp3", "sp4"]
    assert [r.category for r in path] == ["gsd.failover", "gsd.recover", "rpc.call"]


def test_critical_path_without_matching_root_is_empty():
    assert critical_path([span_rec(1.0, "rpc.call", "sp1")]) == []


# -- kernel health endpoint ---------------------------------------------------


def health_row(service, node, time, hist=None, **extra):
    row = {"service": service, "node": node, "partition": "p0", "time": time,
           "inflight_rpcs": 0, "counters": {}, "hist": hist or {}}
    row.update(extra)
    return row


def test_health_report_largest_count_wins_and_staleness():
    small = {"rpc.call": {"count": 3, "p50": 0.001, "p95": 0.004, "p99": 0.004}}
    big = {"rpc.call": {"count": 40, "p50": 0.002, "p95": 0.016, "p99": 0.063}}
    rows = [
        health_row("es", "p0s0", 95.0, hist=big, outbox_depth=2),
        health_row("db", "p0s0", 96.0, hist=small),
        health_row("gsd", "p1s0", 10.0),  # last report long ago
    ]
    report = health_report(rows, now=100.0, stale_after=30.0)
    assert report["latency"]["rpc.call"] == big["rpc.call"]
    assert report["stale"] == ["gsd@p1s0"]
    es = report["services"]["es@p0s0"]
    assert es["outbox_depth"] == 2 and es["age_s"] == pytest.approx(5.0)
    assert "outbox_depth" not in report["services"]["db@p0s0"]


def test_health_report_empty_rows():
    assert health_report([]) == {"services": {}, "latency": {}, "stale": []}


def test_alerts_fire_on_staleness_and_p99():
    rows = [
        health_row("gsd", "p1s0", 10.0),  # stale
        health_row(
            "es", "p0s0", 98.0,
            hist={"es.deliver": {"count": 50, "p50": 0.1, "p95": 0.4, "p99": 0.9}},
        ),
    ]
    report = health_report(rows, now=100.0, stale_after=30.0)
    fired = alerts(report)
    assert [(a.severity, a.rule, a.subject) for a in fired] == [
        ("critical", "health.stale", "gsd@p1s0"),
        ("warning", "latency.p99", "es.deliver"),
    ]
    assert fired[0].value == pytest.approx(90.0)
    assert fired[1].value == pytest.approx(0.9)


def test_alerts_quiet_when_healthy():
    rows = [
        health_row(
            "es", "p0s0", 99.0,
            hist={"es.deliver": {"count": 50, "p50": 0.001, "p95": 0.01, "p99": 0.02}},
        ),
    ]
    report = health_report(rows, now=100.0, stale_after=30.0)
    assert alerts(report) == []


def test_alerts_custom_limits_and_latency_only_report():
    report = {"latency": {"rpc.call": {"count": 9, "p99": 0.5}}}
    assert alerts(report) == []  # default rpc.call ceiling is 1.0 s
    fired = alerts(report, p99_limits={"rpc.call": 0.1})
    assert len(fired) == 1 and fired[0].rule == "latency.p99"


def test_alerts_per_consumer_slo_rule():
    """One slow subscription pages even when the aggregate looks healthy."""
    report = {"latency": {
        "es.deliver": {"count": 100, "p50": 0.01, "p95": 0.05, "p99": 0.1},
        "es.deliver.to.slowpoke": {"count": 10, "p50": 0.2, "p95": 0.8, "p99": 0.9},
        "es.deliver.to.ok": {"count": 10, "p50": 0.01, "p95": 0.05, "p99": 0.1},
    }}
    fired = alerts(report)
    assert [(a.severity, a.rule, a.subject) for a in fired] == [
        ("warning", "es.deliver.slo", "slowpoke"),
    ]
    assert fired[0].value == pytest.approx(0.9)
    # A tighter explicit SLO catches both consumers; a loose one, neither.
    assert len(alerts(report, consumer_slo=0.05)) == 2
    assert alerts(report, consumer_slo=2.0) == []


def test_consumer_slo_defaults_to_aggregate_ceiling():
    """With no explicit SLO, the per-consumer ceiling follows the
    ``es.deliver`` entry of ``p99_limits``."""
    report = {"latency": {
        "es.deliver.to.c1": {"count": 5, "p50": 0.1, "p95": 0.2, "p99": 0.3},
    }}
    assert alerts(report) == []  # default aggregate ceiling is 0.5 s
    fired = alerts(report, p99_limits={"es.deliver": 0.25})
    assert [(a.rule, a.subject) for a in fired] == [("es.deliver.slo", "c1")]


def test_alerts_view_staleness_rule():
    """A lagging materialized view pages; a current one stays quiet."""
    report = {"latency": {}}
    stats = {
        "gridview.cluster": {"staleness": 5.0, "owner": "p0"},
        "monitoring.health": {"staleness": 0.01, "owner": "p1"},
    }
    fired = alerts(report, view_stats=stats)
    assert [(a.severity, a.rule, a.subject) for a in fired] == [
        ("warning", "view.staleness", "gridview.cluster"),
    ]
    assert fired[0].value == pytest.approx(5.0)
    assert "lags its base tables" in fired[0].message
    # Custom limit tightens / loosens the rule.
    assert len(alerts(report, view_stats=stats, view_staleness_limit=0.001)) == 2
    assert alerts(report, view_stats=stats, view_staleness_limit=10.0) == []


def test_alerts_quorum_rule():
    """``quorum.lost`` pages critical with the surviving set; a later
    ``quorum.regained`` for the same node downgrades it to a warning
    breadcrumb (latest event per node wins)."""
    report = {"latency": {}}
    events = [
        {"type": "quorum.lost", "node": "p2s0", "partition": "p2",
         "live": ["p2", "p3"]},
        {"type": "quorum.lost", "node": "p3s0", "partition": "p3",
         "live": ["p2", "p3"]},
    ]
    fired = alerts(report, quorum_events=events)
    assert [(a.severity, a.rule, a.subject) for a in fired] == [
        ("critical", "quorum.lost", "p2s0"),
        ("critical", "quorum.lost", "p3s0"),
    ]
    assert fired[0].value == pytest.approx(2.0)
    assert "sees only p2, p3" in fired[0].message
    assert "refusing placement and checkpoint writes" in fired[0].message

    # The heal: regained supersedes lost for that node.
    events.append({"type": "quorum.regained", "node": "p2s0", "partition": "p2"})
    fired = alerts(report, quorum_events=events)
    assert [(a.severity, a.rule, a.subject) for a in fired] == [
        ("critical", "quorum.lost", "p3s0"),
        ("warning", "quorum.regained", "p2s0"),
    ]
    # Unknown event types and node-less events are ignored.
    assert alerts(report, quorum_events=[{"type": "quorum.lost"},
                                         {"type": "other", "node": "x"}]) == []


def test_view_report_plugs_into_alerts():
    from repro.userenv.monitoring import view_report

    listing = {"p0": {"views": [{
        "name": "v", "query": {"table": "nodes"},
        "stats": {"maintenance_events": 7, "delta_applied": 7, "rebuilds": 0,
                  "resyncs": 0, "staleness": 2.5},
    }]}}
    report = view_report(listing)
    fired = alerts({"latency": {}}, view_stats=report["views"])
    assert [a.subject for a in fired] == ["v"]


def test_health_view_feeds_health_report():
    """health_report over a HEALTH_VIEW read equals one over a fresh scan."""
    from repro.cluster import Cluster, ClusterSpec
    from repro.kernel import KernelTimings, PhoenixKernel
    from repro.sim import Simulator
    from repro.userenv.monitoring import HEALTH_VIEW_NAME, health_view_query
    from tests.userenv.conftest import drive

    sim = Simulator(seed=5)
    cluster = Cluster(sim, ClusterSpec.build(partitions=3, computes=2))
    timings = KernelTimings(heartbeat_interval=5.0, health_report_interval=2.5)
    kernel = PhoenixKernel(cluster, timings=timings)
    kernel.boot()
    sim.run(until=10.0)
    client = kernel.client(cluster.partitions[0].server)
    reply = drive(sim, client.register_view(HEALTH_VIEW_NAME, health_view_query()),
                  max_time=60.0)
    assert reply and reply.get("ok")
    sim.run(until=sim.now + 10.0)
    view = drive(sim, client.read_view(HEALTH_VIEW_NAME))
    report = health_report(view["rows"], now=sim.now, stale_after=30.0)
    assert report["services"] and not report["stale"]
    fresh = drive(sim, client.query_bulletin("kernel_health"))
    assert set(report["services"]) == {
        f"{r['service']}@{r['node']}" for r in fresh["rows"]
    }
