"""SLA alert events from the business runtime."""

import pytest

from repro.userenv.business import BizAppSpec, TierSpec, install_business_runtime
from repro.userenv.business.runtime import SLA_RESTORED, SLA_VIOLATED
from tests.kernel.test_events import subscribe_collector


@pytest.fixture()
def runtime(kernel, sim):
    rt = install_business_runtime(kernel, partition_id="p1")
    sim.run(until=sim.now + 2.0)
    return rt


def test_single_replica_outage_raises_and_clears_sla_alert(kernel, sim, runtime, injector):
    inbox = subscribe_collector(kernel, sim, "p0c0", "slawatch",
                                types=(SLA_VIOLATED, SLA_RESTORED), partition="p1")
    runtime.deploy(BizAppSpec(name="solo", tiers=(TierSpec("db", 1, cpus=2),)))
    sim.run(until=sim.now + 3.0)
    replica = runtime.apps["solo"].replicas[0]
    injector.crash_node(replica.node)
    sim.run(until=sim.now + 60.0)
    types = [e.type for e in inbox]
    assert SLA_VIOLATED in types
    assert SLA_RESTORED in types
    assert types.index(SLA_VIOLATED) < types.index(SLA_RESTORED)
    violated = next(e for e in inbox if e.type == SLA_VIOLATED)
    assert violated.data["app"] == "solo"


def test_redundant_tier_failure_raises_no_sla_alert(kernel, sim, runtime, injector):
    inbox = subscribe_collector(kernel, sim, "p0c0", "slawatch2",
                                types=(SLA_VIOLATED,), partition="p1")
    runtime.deploy(BizAppSpec(name="ha-app", tiers=(TierSpec("web", 3, cpus=1),)))
    sim.run(until=sim.now + 3.0)
    replica = next(r for r in runtime.apps["ha-app"].replicas if r.healthy)
    injector.kill_process(replica.node, f"job.{replica.job_id}")
    sim.run(until=sim.now + 30.0)
    # Two other replicas kept serving: no SLA violation.
    assert inbox == []
    assert runtime.app_status("ha-app")["tiers"]["web"] == 3


def test_sla_trace_marks(kernel, sim, runtime, injector):
    runtime.deploy(BizAppSpec(name="solo2", tiers=(TierSpec("db", 1, cpus=2),)))
    sim.run(until=sim.now + 3.0)
    replica = runtime.apps["solo2"].replicas[0]
    injector.kill_process(replica.node, f"job.{replica.job_id}")
    sim.run(until=sim.now + 20.0)
    transitions = [r["transition"] for r in sim.trace.records("bizrt.sla", app="solo2")]
    assert transitions == ["down", "up"]
