"""Phoenix-PWS job management: pools, policies, leasing, events, HA."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SchedulingError
from repro.userenv.pws import JobRecord, JobSpec, JobState, PoolManager, PoolSpec, order_queue
from repro.userenv.pws.server import CANCEL, POOLS, STATUS, SUBMIT
from tests.userenv.conftest import pws_rpc

# -- pool manager unit tests --------------------------------------------------


def make_pm():
    pm = PoolManager([
        PoolSpec("a", ["n1", "n2"]),
        PoolSpec("b", ["n3", "n4"], policy="sjf"),
    ])
    for n in ("n1", "n2", "n3", "n4"):
        pm.set_capacity(n, 4)
    return pm


def test_pool_validation():
    with pytest.raises(SchedulingError):
        PoolManager([])
    with pytest.raises(SchedulingError):
        PoolManager([PoolSpec("a", ["n1"]), PoolSpec("a", ["n2"])])
    with pytest.raises(SchedulingError):
        PoolManager([PoolSpec("a", ["n1"]), PoolSpec("b", ["n1"])])
    with pytest.raises(SchedulingError):
        PoolSpec("x", [], policy="weird")


def test_allocation_and_release():
    pm = make_pm()
    pm.allocate("n1", 3)
    assert pm.free_cpus("n1") == 1
    with pytest.raises(SchedulingError):
        pm.allocate("n1", 2)
    pm.release("n1", 3)
    assert pm.free_cpus("n1") == 4
    pm.release("n1", 99)  # clamped at capacity
    assert pm.free_cpus("n1") == 4


def test_down_node_has_no_free_cpus():
    pm = make_pm()
    pm.set_node_up("n1", False)
    assert pm.free_cpus("n1") == 0
    assert pm.pick_nodes("a", 2, 1) == ["n2"]
    pm.set_node_up("n1", True)
    pm.reset_node("n1")
    assert pm.free_cpus("n1") == 4


def test_pick_nodes_respects_cpus_per_node():
    pm = make_pm()
    pm.allocate("n1", 2)
    assert pm.pick_nodes("a", 2, 3) == ["n2"]
    assert pm.pick_nodes("a", 2, 2) == ["n1", "n2"]


def test_lease_lifecycle():
    pm = make_pm()
    cands = pm.lease_candidates("a", needed=1, cpus_per_node=4)
    assert len(cands) == 1 and cands[0].owner_pool == "b"
    lease = cands[0]
    lease.job_id = "j1"
    pm.add_lease(lease)
    assert pm.pool_of(lease.node) == "a"
    assert lease.node in pm.nodes_in_pool("a")
    returned = pm.return_leases("j1")
    assert [l.node for l in returned] == [lease.node]
    assert pm.pool_of(lease.node) == "b"


def test_busy_nodes_not_leased():
    pm = make_pm()
    pm.allocate("n3", 1)
    pm.allocate("n4", 1)
    assert pm.lease_candidates("a", needed=1, cpus_per_node=1) == []


def test_non_lendable_pool_keeps_nodes():
    pm = PoolManager([
        PoolSpec("a", ["n1"]),
        PoolSpec("b", ["n2"], lendable=False),
    ])
    pm.set_capacity("n1", 4)
    pm.set_capacity("n2", 4)
    assert pm.lease_candidates("a", needed=1, cpus_per_node=1) == []


def test_pool_stats():
    pm = make_pm()
    pm.allocate("n1", 2)
    stats = pm.pool_stats()
    assert stats["a"]["free_cpus"] == 6
    assert stats["a"]["total_cpus"] == 8
    assert stats["b"]["nodes_up"] == 2


# -- policy unit tests --------------------------------------------------------


def rec(job_id, submitted, duration):
    return JobRecord(
        spec=JobSpec(job_id=job_id, user="u", nodes=1, cpus_per_node=1, duration=duration),
        submitted_at=submitted,
    )


def test_fifo_orders_by_submission():
    jobs = [rec("b", 2.0, 1.0), rec("a", 1.0, 99.0)]
    assert [j.spec.job_id for j in order_queue("fifo", jobs)] == ["a", "b"]


def test_sjf_orders_by_duration():
    jobs = [rec("long", 1.0, 100.0), rec("short", 2.0, 1.0)]
    assert [j.spec.job_id for j in order_queue("sjf", jobs)] == ["short", "long"]


def test_unknown_policy_rejected():
    with pytest.raises(SchedulingError):
        order_queue("lifo", [])


@given(st.lists(st.tuples(st.floats(0, 100), st.floats(1, 100)), min_size=1, max_size=20))
def test_property_sjf_durations_nondecreasing(items):
    jobs = [rec(f"j{i}", sub, dur) for i, (sub, dur) in enumerate(items)]
    ordered = order_queue("sjf", jobs)
    durations = [j.spec.duration for j in ordered]
    assert durations == sorted(durations)


def test_job_record_payload_roundtrip():
    record = rec("j1", 5.0, 10.0)
    record.state = JobState.RUNNING
    record.assigned_nodes = ["n1"]
    record.outstanding = {"n1"}
    assert JobRecord.from_payload(record.to_payload()).to_payload() == record.to_payload()


# -- server integration -----------------------------------------------------


def test_submit_run_complete(kernel, sim, pws):
    reply = pws_rpc(kernel, sim, SUBMIT,
                    {"user": "alice", "nodes": 2, "cpus_per_node": 2, "duration": 20.0, "pool": "batch"})
    assert reply["ok"]
    job_id = reply["job_id"]
    sim.run(until=sim.now + 2.0)
    status = pws_rpc(kernel, sim, STATUS, {"job_id": job_id})
    assert status["job"]["state"] == "running"
    assert len(status["job"]["assigned_nodes"]) == 2
    sim.run(until=sim.now + 30.0)
    status = pws_rpc(kernel, sim, STATUS, {"job_id": job_id})
    assert status["job"]["state"] == "done"
    # CPUs are free again.
    for node in status["job"]["assigned_nodes"]:
        assert kernel.cluster.node(node).busy_cpus == 0


def test_submit_validation(kernel, sim, pws):
    reply = pws_rpc(kernel, sim, SUBMIT,
                    {"user": "a", "nodes": 0, "cpus_per_node": 1, "duration": 1.0, "pool": "batch"})
    assert reply["ok"] is False
    reply = pws_rpc(kernel, sim, SUBMIT,
                    {"user": "a", "nodes": 1, "cpus_per_node": 1, "duration": 1.0, "pool": "nope"})
    assert "unknown pool" in reply["error"]


def test_cancel_running_job(kernel, sim, pws):
    reply = pws_rpc(kernel, sim, SUBMIT,
                    {"user": "a", "nodes": 1, "cpus_per_node": 4, "duration": 500.0, "pool": "batch"})
    job_id = reply["job_id"]
    sim.run(until=sim.now + 2.0)
    reply = pws_rpc(kernel, sim, CANCEL, {"job_id": job_id})
    assert reply["ok"]
    sim.run(until=sim.now + 2.0)
    status = pws_rpc(kernel, sim, STATUS, {"job_id": job_id})
    assert status["job"]["state"] == "cancelled"
    assert all(kernel.cluster.node(n).busy_cpus == 0 for n in kernel.cluster.compute_nodes())


def test_dynamic_leasing_and_return(kernel, sim, pws):
    # interactive pool has 4 nodes (p2 computes+backup); ask for 6.
    reply = pws_rpc(kernel, sim, SUBMIT,
                    {"user": "b", "nodes": 6, "cpus_per_node": 2, "duration": 15.0,
                     "pool": "interactive"})
    assert reply["ok"]
    sim.run(until=sim.now + 2.0)
    assert len(pws.pm.leases) == 2
    assert sim.trace.records("pws.lease")
    pools = pws_rpc(kernel, sim, POOLS, {})
    assert pools["pools"]["interactive"]["leases_in"] == 2
    assert pools["pools"]["batch"]["leases_out"] == 2
    sim.run(until=sim.now + 30.0)
    assert pws.pm.leases == []  # returned after completion


def test_sjf_pool_runs_short_job_first(kernel, sim, pws):
    # Occupy the batch pool entirely so leasing cannot bail out the
    # interactive queue, then fill the interactive pool.
    pws_rpc(kernel, sim, SUBMIT,
            {"user": "hog", "nodes": 8, "cpus_per_node": 4, "duration": 500.0, "pool": "batch"})
    filler = pws_rpc(kernel, sim, SUBMIT,
                     {"user": "f", "nodes": 4, "cpus_per_node": 4, "duration": 30.0,
                      "pool": "interactive"})
    sim.run(until=sim.now + 2.0)
    long = pws_rpc(kernel, sim, SUBMIT,
                   {"user": "l", "nodes": 4, "cpus_per_node": 4, "duration": 100.0,
                    "pool": "interactive"})
    short = pws_rpc(kernel, sim, SUBMIT,
                    {"user": "s", "nodes": 4, "cpus_per_node": 4, "duration": 10.0,
                     "pool": "interactive"})
    sim.run(until=sim.now + 34.0)  # filler (30 s) done; short (10 s) mid-run
    status_short = pws_rpc(kernel, sim, STATUS, {"job_id": short["job_id"]})
    status_long = pws_rpc(kernel, sim, STATUS, {"job_id": long["job_id"]})
    assert status_short["job"]["state"] == "running"
    assert status_long["job"]["state"] == "queued"
    assert status_short["job"]["started_at"] < 50.0


def test_node_failure_requeues_job(kernel, sim, pws, injector):
    reply = pws_rpc(kernel, sim, SUBMIT,
                    {"user": "a", "nodes": 2, "cpus_per_node": 2, "duration": 200.0, "pool": "batch"})
    job_id = reply["job_id"]
    sim.run(until=sim.now + 2.0)
    victim = pws_rpc(kernel, sim, STATUS, {"job_id": job_id})["job"]["assigned_nodes"][0]
    injector.crash_node(victim)
    # detection (5s hb) + diagnosis (~2s) + event propagation, then requeue+redispatch
    sim.run(until=sim.now + 30.0)
    status = pws_rpc(kernel, sim, STATUS, {"job_id": job_id})
    assert status["job"]["state"] == "running"
    assert victim not in status["job"]["assigned_nodes"]
    assert sim.trace.counter("pws.requeues") == 1
    sim.run(until=sim.now + 250.0)
    assert pws_rpc(kernel, sim, STATUS, {"job_id": job_id})["job"]["state"] == "done"


def test_scheduler_ha_state_survives_process_failure(kernel, sim, pws, injector):
    """§5.4 property 3: the scheduling group is recovered by the GSD and
    resumes from checkpointed state."""
    r1 = pws_rpc(kernel, sim, SUBMIT,
                 {"user": "a", "nodes": 1, "cpus_per_node": 1, "duration": 60.0, "pool": "batch"})
    sim.run(until=sim.now + 2.0)
    node = kernel.placement[("pws", "p0")]
    injector.kill_process(node, "pws")
    sim.run(until=sim.now + 10.0)  # service check period (5s) + restart
    fresh = kernel.live_daemon("pws", kernel.placement[("pws", "p0")])
    assert fresh is not pws and fresh.alive
    assert r1["job_id"] in fresh.jobs
    assert sim.trace.records("pws.state_recovered")
    # The running job still completes (reconciliation/events).
    sim.run(until=sim.now + 120.0)
    status = pws_rpc(kernel, sim, STATUS, {"job_id": r1["job_id"]})
    assert status["job"]["state"] == "done"


def test_event_driven_not_polling(kernel, sim, pws):
    """PWS consumes events; it does not poll nodes for resources."""
    before = sim.trace.counter("pws.events_seen")
    pws_rpc(kernel, sim, SUBMIT,
            {"user": "a", "nodes": 1, "cpus_per_node": 1, "duration": 5.0, "pool": "batch"})
    sim.run(until=sim.now + 15.0)
    assert sim.trace.counter("pws.events_seen") > before  # APP_STARTED/EXITED arrived
    assert sim.trace.counter("pbs.polls") == 0
