"""Walltime enforcement (PWS) + tier scaling (business runtime)."""

import pytest

from repro.errors import SchedulingError
from repro.userenv.business import BizAppSpec, TierSpec, install_business_runtime
from repro.userenv.pws.jobs import JobSpec
from repro.userenv.pws.server import STATUS, SUBMIT
from tests.userenv.conftest import drive, pws_rpc

# -- walltime ------------------------------------------------------------


def test_walltime_validation():
    with pytest.raises(SchedulingError):
        JobSpec(job_id="j", user="u", nodes=1, cpus_per_node=1, duration=1.0, walltime=0)
    spec = JobSpec(job_id="j", user="u", nodes=1, cpus_per_node=1, duration=1.0, walltime=9.0)
    assert JobSpec.from_payload(spec.to_payload()).walltime == 9.0


def test_job_within_walltime_completes(kernel, sim, pws):
    reply = pws_rpc(kernel, sim, SUBMIT,
                    {"user": "a", "nodes": 1, "cpus_per_node": 1, "duration": 10.0,
                     "walltime": 60.0, "pool": "batch"})
    sim.run(until=sim.now + 20.0)
    assert pws_rpc(kernel, sim, STATUS, {"job_id": reply["job_id"]})["job"]["state"] == "done"
    assert sim.trace.counter("pws.walltime_kills") == 0


def test_overrunning_job_killed_at_walltime(kernel, sim, pws):
    reply = pws_rpc(kernel, sim, SUBMIT,
                    {"user": "a", "nodes": 2, "cpus_per_node": 2, "duration": 500.0,
                     "walltime": 20.0, "pool": "batch"})
    job_id = reply["job_id"]
    sim.run(until=sim.now + 30.0)
    status = pws_rpc(kernel, sim, STATUS, {"job_id": job_id})
    assert status["job"]["state"] == "failed"
    assert sim.trace.counter("pws.walltime_kills") == 1
    # Resources freed, tasks really gone.
    for node in status["job"]["assigned_nodes"]:
        assert kernel.cluster.node(node).busy_cpus == 0
    # The kill-induced APP_FAILED events must not double-penalize.
    sim.run(until=sim.now + 20.0)
    assert pws_rpc(kernel, sim, STATUS, {"job_id": job_id})["job"]["state"] == "failed"


def test_walltime_guard_survives_scheduler_restart(kernel, sim, pws, injector):
    reply = pws_rpc(kernel, sim, SUBMIT,
                    {"user": "a", "nodes": 1, "cpus_per_node": 1, "duration": 500.0,
                     "walltime": 40.0, "pool": "batch"})
    sim.run(until=sim.now + 5.0)
    injector.kill_process(kernel.placement[("pws", "p0")], "pws")
    sim.run(until=sim.now + 60.0)  # GSD restarts PWS; guard re-armed
    status = pws_rpc(kernel, sim, STATUS, {"job_id": reply["job_id"]})
    assert status["job"]["state"] == "failed"
    assert sim.trace.counter("pws.walltime_kills") >= 1


# -- wildcard subscriptions ----------------------------------------------


def test_wildcard_type_subscription(kernel, sim):
    from tests.kernel.test_events import publish, subscribe_collector

    inbox = subscribe_collector(kernel, sim, "p0c0", "fam", types=("node.*",))
    publish(kernel, sim, "p0c1", "node.failure", {"n": 1})
    publish(kernel, sim, "p0c1", "node.recovery", {"n": 2})
    publish(kernel, sim, "p0c1", "service.failure", {"n": 3})
    sim.run(until=sim.now + 0.5)
    assert [e.type for e in inbox] == ["node.failure", "node.recovery"]


# -- business tier scaling ------------------------------------------------


@pytest.fixture()
def runtime(kernel, sim):
    rt = install_business_runtime(kernel, partition_id="p1")
    sim.run(until=sim.now + 2.0)
    rt.deploy(BizAppSpec(name="shop", tiers=(TierSpec("web", 2, cpus=1),)))
    sim.run(until=sim.now + 2.0)
    return rt


def test_scale_up(kernel, sim, runtime):
    assert runtime.scale("shop", "web", 4) == 4
    sim.run(until=sim.now + 2.0)
    assert runtime.app_status("shop")["tiers"]["web"] == 4


def test_scale_down_releases_resources(kernel, sim, runtime):
    busy_before = sum(kernel.cluster.node(n).busy_cpus for n in kernel.cluster.nodes)
    assert runtime.scale("shop", "web", 1) == 1
    sim.run(until=sim.now + 2.0)
    assert runtime.app_status("shop")["tiers"]["web"] == 1
    busy_after = sum(kernel.cluster.node(n).busy_cpus for n in kernel.cluster.nodes)
    assert busy_after == busy_before - 1
    # The retired replica is not healed back.
    sim.run(until=sim.now + 10.0)
    assert runtime.app_status("shop")["tiers"]["web"] == 1


def test_scale_validation(kernel, sim, runtime):
    from repro.errors import UserEnvError

    with pytest.raises(UserEnvError):
        runtime.scale("shop", "web", 0)
    with pytest.raises(UserEnvError):
        runtime.scale("ghost", "web", 2)
    with pytest.raises(UserEnvError):
        runtime.scale("shop", "db", 2)


def test_scale_via_rpc(kernel, sim, runtime):
    sig = kernel.cluster.transport.rpc(
        "p0c0", runtime.node_id, "bizrt", "bizrt.scale",
        {"name": "shop", "tier": "web", "replicas": 3})
    reply = drive(sim, sig)
    assert reply == {"ok": True, "replicas": 3}
    sig = kernel.cluster.transport.rpc(
        "p0c0", runtime.node_id, "bizrt", "bizrt.scale",
        {"name": "shop", "tier": "nope", "replicas": 3})
    assert drive(sim, sig)["ok"] is False
