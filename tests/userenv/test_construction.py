"""System construction tool: configure/deploy/boot, node recovery, health."""

import pytest

from repro.cluster import ClusterSpec
from repro.errors import UserEnvError
from repro.sim import Simulator
from repro.userenv.construction import ConstructionTool


def test_three_phase_build():
    sim = Simulator(seed=3)
    tool = ConstructionTool(sim)
    cluster = tool.configure(ClusterSpec.build(partitions=2, computes=2))
    assert cluster.size == 8
    kernel = tool.deploy()
    report = tool.boot()
    assert report.phases == ["configured", "deployed", "booted"]
    assert report.node_count == 8
    assert report.partition_count == 2
    assert kernel.booted
    assert sim.trace.records("construct.booted")


def test_phase_ordering_enforced():
    sim = Simulator(seed=3)
    tool = ConstructionTool(sim)
    with pytest.raises(UserEnvError):
        tool.deploy()
    with pytest.raises(UserEnvError):
        tool.boot()
    tool.configure(ClusterSpec.build(partitions=1, computes=1))
    with pytest.raises(UserEnvError):
        tool.configure(ClusterSpec.build(partitions=1, computes=1))
    tool.deploy()
    with pytest.raises(UserEnvError):
        tool.deploy()


def test_build_convenience(kernel):
    # The shared fixture already used tool.build(); just sanity-check it.
    tool = kernel.construction_tool
    assert tool.kernel is kernel
    assert tool.report is not None


def test_recover_node_restarts_daemons_and_clears_down_state(kernel, sim, injector):
    tool = kernel.construction_tool
    injector.crash_node("p1c1")
    sim.run(until=sim.now + 15.0)  # GSD marks the node down
    assert kernel.gsd("p1").node_state["p1c1"] == "down"
    tool.recover_node("p1c1")
    hostos = kernel.cluster.hostos("p1c1")
    assert hostos.process_alive("wd")
    assert hostos.process_alive("ppm")
    assert hostos.process_alive("detector")
    sim.run(until=sim.now + 12.0)  # heartbeats resume; GSD publishes recovery
    assert kernel.gsd("p1").node_state["p1c1"] == "up"


def test_health_report(kernel, sim, injector):
    tool = kernel.construction_tool
    report = tool.health_report()
    assert report["kernel_healthy"] and report["healthy"]
    injector.kill_process(kernel.placement[("db", "p2")], "db")
    report = tool.health_report()
    assert report["kernel_services_missing"] == ["db@p2"]
    assert not report["kernel_healthy"]
    sim.run(until=sim.now + 10.0)  # GSD heals it
    assert tool.health_report()["kernel_healthy"]


def test_health_report_requires_boot():
    tool = ConstructionTool(Simulator())
    with pytest.raises(UserEnvError):
        tool.health_report()
    with pytest.raises(UserEnvError):
        tool.recover_node("x")


def test_build_emits_causal_span_tree(sim):
    tool = ConstructionTool(sim)
    tool.build(ClusterSpec.build(partitions=2, computes=2))
    [root] = sim.trace.records("construct.build")
    assert root.get("duration") is not None and not root.get("parent_id")
    children = [r for r in sim.trace._records if r.get("parent_id") == root.get("span_id")]
    assert [c.category for c in children] == [
        "construct.configure", "construct.deploy", "construct.boot",
    ]
    # Phase point-marks are correlated to their phase spans.
    [mark] = sim.trace.records("construct.configured")
    assert mark.get("span_id") == children[0].get("span_id")


def test_recover_node_is_spanned(kernel, sim, injector):
    tool = kernel.construction_tool
    injector.crash_node("p1c1")
    sim.run(until=sim.now + 15.0)
    tool.recover_node("p1c1")
    [span] = [r for r in sim.trace.records("construct.recover")
              if r.get("duration") is not None]
    [mark] = sim.trace.records("construct.node_recovered")
    assert mark.get("span_id") == span.get("span_id")
