"""Serving tier: admission control, routing fairness, traffic + spans,
backpressure events, and the SLO autoscaler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec
from repro.errors import UserEnvError
from repro.kernel import KernelTimings
from repro.sim import Simulator
from repro.userenv.business import (
    AdmissionQueue,
    ArrivalProfile,
    Autoscaler,
    AutoscalePolicy,
    BizAppSpec,
    RequestClass,
    TierPolicy,
    TierSpec,
    TrafficGenerator,
    install_business_runtime,
)
from repro.userenv.business.runtime import BusinessRuntime, Replica
from repro.userenv.business.traffic import BACKPRESSURE_ON
from repro.userenv.construction import ConstructionTool
from tests.kernel.test_events import subscribe_collector


# -- admission queue: boundedness property --------------------------------

OPS = st.lists(
    st.one_of(
        st.just(("arrive",)),
        st.just(("finish",)),
        st.tuples(st.just("limit"), st.integers(min_value=0, max_value=8)),
    ),
    max_size=120,
)


@settings(max_examples=60, deadline=None)
@given(ops=OPS, cap=st.integers(min_value=1, max_value=12))
def test_admission_queue_is_bounded(ops, cap):
    """Under any arrival/finish/limit-change interleaving: the wait queue
    never exceeds its cap, overflow is rejected-and-counted (never
    silently dropped), and every admission is accounted for."""
    sim = Simulator(seed=0, trace_capacity=0)
    limit_box = [2]
    queue = AdmissionQueue(sim, "web", limit=lambda: limit_box[0], queue_cap=cap)
    arrivals = rejected = fired = finished = 0
    parked: list = []
    granted: list = []

    for op in ops:
        if op[0] == "arrive":
            arrivals += 1
            signal = queue.try_enter()
            if signal is None:
                rejected += 1
            elif signal.fired:
                granted.append(signal)
            else:
                parked.append(signal)
        elif op[0] == "finish":
            if granted:
                granted.pop()
                finished += 1
                queue.leave()
        else:
            limit_box[0] = op[1]
        # Parked arrivals promoted by leave()/try_enter() regrants.
        for signal in [s for s in parked if s.fired]:
            parked.remove(signal)
            granted.append(signal)
        fired = len(granted) + finished
        assert queue.depth == len(parked) <= cap
        assert queue.rejected == rejected
        assert queue.admitted == fired
        assert queue.busy == fired - finished
        # Conservation: every arrival is granted, parked, or rejected.
        assert fired + len(parked) + rejected == arrivals
    # Once the limit is positive again and slots drain, the queue empties.
    limit_box[0] = max(limit_box[0], 1)
    queue._grant()
    while queue.busy:
        queue.leave()
    assert queue.depth == 0


def test_admission_queue_rejects_when_full():
    sim = Simulator(seed=0)
    queue = AdmissionQueue(sim, "web", limit=lambda: 1, queue_cap=2)
    first = queue.try_enter()
    assert first is not None and first.fired
    parked = [queue.try_enter() for _ in range(2)]
    assert all(s is not None and not s.fired for s in parked)
    assert queue.try_enter() is None  # full -> rejected
    assert queue.rejected == 1
    queue.leave()
    assert parked[0].fired  # FIFO handoff
    assert queue.depth == 1


# -- routing fairness property --------------------------------------------

def _stub_runtime(sim, healthy_mask):
    """A BusinessRuntime with just enough state to exercise routing."""
    rt = BusinessRuntime.__new__(BusinessRuntime)
    rt.sim = sim
    rt._rr = {}
    replicas = [
        Replica(app="shop", tier="web", index=i, node=f"n{i}", healthy=up)
        for i, up in enumerate(healthy_mask)
    ]
    state = BizAppSpec(name="shop", tiers=(TierSpec("web", len(replicas)),))
    rt.apps = {"shop": _AppStateStub(state, replicas)}
    return rt


class _AppStateStub:
    def __init__(self, spec, replicas):
        self.spec = spec
        self.replicas = replicas

    def tier_replicas(self, tier):
        return [r for r in self.replicas if r.tier == tier]


@settings(max_examples=60, deadline=None)
@given(
    masks=st.lists(
        st.lists(st.booleans(), min_size=1, max_size=6).filter(any),
        min_size=1, max_size=4,
    ),
    rounds=st.integers(min_value=1, max_value=4),
)
def test_route_round_robin_fairness_under_churn(masks, rounds):
    """Between churn events, a window of k*len(healthy) consecutive
    requests lands exactly k times on every healthy replica — the
    paper's load-balancing promise, kill/heal churn included."""
    sim = Simulator(seed=0, trace_capacity=0)
    rt = _stub_runtime(sim, masks[0])
    state = rt.apps["shop"]
    for mask in masks:
        # Churn: reshape the healthy set (indices persist, health flips).
        while len(state.replicas) < len(mask):
            state.replicas.append(Replica(
                app="shop", tier="web", index=len(state.replicas),
                node=f"n{len(state.replicas)}", healthy=False))
        for i, replica in enumerate(state.replicas):
            replica.healthy = mask[i] if i < len(mask) else False
        healthy = [r for r in state.replicas if r.healthy]
        hits = {r.job_id: 0 for r in healthy}
        for _ in range(rounds * len(healthy)):
            hits[rt.route_replica("shop", "web").job_id] += 1
        assert set(hits.values()) == {rounds}


def test_route_raises_when_tier_down():
    sim = Simulator(seed=0, trace_capacity=0)
    rt = _stub_runtime(sim, [False, False])
    with pytest.raises(UserEnvError):
        rt.route_replica("shop", "web")
    with pytest.raises(UserEnvError):
        rt.route_replica("nosuch", "web")


# -- integration: generator, spans, backpressure, autoscaler ---------------

@pytest.fixture()
def serving(kernel, sim):
    workers = [n for n in kernel.cluster.compute_nodes() if n.startswith("p0")]
    rt = install_business_runtime(kernel, worker_nodes=workers, partition_id="p0")
    sim.run(until=sim.now + 2.0)
    rt.deploy(BizAppSpec(name="shop", tiers=(
        TierSpec("web", 2, cpus=1), TierSpec("db", 1, cpus=1))))
    sim.run(until=sim.now + 2.0)
    return rt


CLASSES = [
    RequestClass(name="browse", service_times={"web": 0.01, "db": 0.005},
                 weight=0.8, slo_p99=0.5),
    RequestClass(name="report", service_times={"web": 0.01, "db": 0.05},
                 weight=0.2, heavy_tail_sigma=0.8),
]


def test_traffic_generator_serves_and_observes(kernel, sim, serving):
    gen = TrafficGenerator(serving, "shop", CLASSES,
                           profile=ArrivalProfile("poisson", rate=50.0))
    gen.start(max_requests=300)
    while not gen.done or gen.inflight:
        sim.run(until=sim.now + 5.0)
    summary = gen.class_summary()
    assert gen.generated == 300
    assert sum(e["completed"] for e in summary.values()) > 250
    for name, entry in summary.items():
        assert entry["completed"] > 0
        assert entry["p99"] > entry["p50"] > 0.0
        hist = sim.trace.histogram(f"bizreq.latency.{name}")
        assert hist is not None and hist.count == entry["completed"]
    # Admission state surfaces through the daemon health row.
    row = serving.health_snapshot()
    assert set(row["serving_queues"]) == {"web", "db"}
    assert row["apps"]["shop"]["serving"]


def test_request_span_decomposes_route_queue_service(kernel, sim, serving):
    gen = TrafficGenerator(serving, "shop", CLASSES,
                           profile=ArrivalProfile("poisson", rate=50.0),
                           span_sample=1)
    gen.start(max_requests=20)
    while not gen.done or gen.inflight:
        sim.run(until=sim.now + 5.0)
    roots = [r for r in sim.trace.records("bizreq.request")
             if r["outcome"] == "ok"]
    assert roots
    root = roots[0]
    children = [r for r in sim.trace.records("bizreq.")
                if r.fields.get("parent_id") == root["span_id"]]
    by_cat = {}
    for rec in children:
        by_cat.setdefault(rec.category, []).append(rec)
    # One queue wait and one service stretch per tier walked.
    assert {r["tier"] for r in by_cat["bizreq.queue"]} == {"web", "db"}
    assert {r["tier"] for r in by_cat["bizreq.service"]} == {"web", "db"}
    for rec in by_cat["bizreq.service"]:
        assert rec["node"] is not None
    # The routing decisions are marked against the same span.
    routes = [r for r in sim.trace.records("bizrt.route")
              if r.fields.get("span_id") == root["span_id"]]
    assert {r["tier"] for r in routes} == {"web", "db"}


def test_overload_engages_backpressure_and_bounds_queue(kernel, sim, serving):
    inbox = subscribe_collector(kernel, sim, "p1c0", "bpwatch",
                                types=(BACKPRESSURE_ON,), partition="p0")
    slow = [RequestClass(name="slow", service_times={"web": 0.5, "db": 0.5})]
    gen = TrafficGenerator(serving, "shop", slow,
                           profile=ArrivalProfile("poisson", rate=100.0),
                           queue_cap=8, slots_per_replica=2)
    gen.start(max_requests=400)
    while not gen.done:
        sim.run(until=sim.now + 5.0)
    sim.run(until=sim.now + 10.0)
    # The queue saturated: backpressure engaged and was published via ES,
    # and the overflow was rejected rather than queued without bound.
    assert sim.trace.counter("bizrt.backpressure_transitions") >= 1
    assert any(e.data["app"] == "shop" for e in inbox)
    assert gen.stats["slow"].rejected > 0
    assert all(q.depth <= 8 for q in gen.queues.values())


def test_autoscaler_grows_tier_under_pressure():
    sim = Simulator(seed=5)
    tool = ConstructionTool(sim)
    kernel = tool.build(
        ClusterSpec.build(partitions=2, computes=4),
        timings=KernelTimings(heartbeat_interval=5.0,
                              health_report_interval=1.0),
    )
    sim.run(until=6.0)
    workers = [n for n in kernel.cluster.compute_nodes() if n.startswith("p0")]
    rt = install_business_runtime(kernel, worker_nodes=workers, partition_id="p0")
    sim.run(until=sim.now + 2.0)
    rt.deploy(BizAppSpec(name="shop", tiers=(TierSpec("web", 1, cpus=1),)))
    sim.run(until=sim.now + 2.0)

    slow = [RequestClass(name="slow", service_times={"web": 0.2})]
    gen = TrafficGenerator(rt, "shop", slow,
                           profile=ArrivalProfile("poisson", rate=40.0),
                           queue_cap=64, slots_per_replica=4)
    scaler = Autoscaler(
        rt, "shop", {"web": TierPolicy(min_replicas=1, max_replicas=4)},
        policy=AutoscalePolicy(interval=2.0, cooldown=4.0, queue_high=4),
    )
    scaler.start()
    gen.start(duration=40.0)
    sim.run(until=sim.now + 50.0)

    assert sim.trace.counter("bizrt.autoscale.up") >= 1
    assert len(rt.apps["shop"].tier_replicas("web")) > 1
    assert any(a["direction"] == "up" for a in scaler.actions)
    assert rt.capacity_audit()["drift"] == 0
