"""Lossy-fabric checkpoint durability: the user-environment registries
must survive dropped ``ckpt.save`` datagrams.

Before the retried-save change, ``_checkpoint`` was a fire-and-forget
``send``: one lost datagram silently dropped the whole registry snapshot
and the next restart resurrected stale state.  These tests pin seeds
where the fabric provably eats checkpoint-save attempts and assert the
``rpc_retry`` path still lands the state for the next incarnation."""

from repro.cluster import Cluster, ClusterSpec, FaultInjector
from repro.kernel import KernelTimings, PhoenixKernel, ports
from repro.sim import Simulator
from repro.userenv.business import BizAppSpec, TierSpec, install_business_runtime
from repro.userenv.pws import PoolSpec, install_pws
from tests.userenv.conftest import drive


def build_lossy(seed, loss_rate=0.15, computes=3):
    sim = Simulator(seed=seed)
    cluster = Cluster(
        sim, ClusterSpec.build(partitions=2, computes=computes, loss_rate=loss_rate)
    )
    kernel = PhoenixKernel(cluster, timings=KernelTimings(heartbeat_interval=5.0))
    kernel.boot()
    sim.run(until=6.0)
    return sim, cluster, kernel


def ckpt_save_losses(sim, src_node):
    return [
        r for r in sim.trace.records("net.loss")
        if r["mtype"] == ports.CKPT_SAVE and r["src"] == src_node
    ]


def test_business_registry_survives_dropped_ckpt_saves():
    """Seed 3 drops several of the runtime's ``ckpt.save`` attempts on the
    15%-loss fabric; the retried save still lands, and a restarted runtime
    reloads the app registry byte-identically."""
    sim, cluster, kernel = build_lossy(seed=3)
    rt = install_business_runtime(kernel, partition_id="p1")
    sim.run(until=sim.now + 2.0)
    rt.deploy(BizAppSpec(name="shop", tiers=(TierSpec("web", 2, cpus=1),)))
    sim.run(until=sim.now + 3.0)
    for replicas in (3, 4):
        rt.scale("shop", "web", replicas)
        sim.run(until=sim.now + 3.0)

    # The fabric provably ate checkpoint-save attempts, and the transport
    # had to retry RPCs to get state through.
    assert ckpt_save_losses(sim, rt.node_id)
    assert sim.trace.counter("rpc.retries") > 0
    registry_before = [r.to_payload() for r in rt.apps["shop"].replicas]

    FaultInjector(cluster).kill_process(rt.node_id, "bizrt")
    sim.run(until=sim.now + 12.0)  # GSD restarts the runtime
    fresh = kernel.live_daemon("bizrt", kernel.placement[("bizrt", "p1")])
    assert fresh is not rt and fresh.alive
    assert sim.trace.records("bizrt.state_recovered")
    assert fresh.apps["shop"].spec == rt.apps["shop"].spec
    assert [r.to_payload() for r in fresh.apps["shop"].replicas] == registry_before


def test_pws_job_registry_survives_dropped_ckpt_saves():
    """Same property for the PWS: submitted jobs survive a server restart
    even when the lossy fabric drops checkpoint-save datagrams."""
    sim, cluster, kernel = build_lossy(seed=6)
    computes = cluster.compute_nodes()
    server = install_pws(kernel, [PoolSpec("batch", computes)])
    sim.run(until=sim.now + 2.0)

    job_ids = []
    for i in range(4):
        # The submit itself rides the lossy fabric too — retry it (a
        # duplicate submit just adds a job; the assertion is unaffected).
        sig = cluster.transport.rpc_retry(
            "p0c0", server.node_id, "pws", "pws.submit",
            {"user": "alice", "nodes": 1, "cpus_per_node": 1,
             "duration": 500.0, "pool": "batch"},
            attempts=4,
        )
        reply = drive(sim, sig)
        assert reply and reply["ok"], reply
        job_ids.append(reply["job_id"])
        sim.run(until=sim.now + 2.0)

    assert ckpt_save_losses(sim, server.node_id)
    assert sim.trace.counter("rpc.retries") > 0

    FaultInjector(cluster).kill_process(server.node_id, "pws")
    sim.run(until=sim.now + 12.0)
    fresh = kernel.live_daemon("pws", kernel.placement[("pws", "p0")])
    assert fresh is not server and fresh.alive
    assert sim.trace.records("pws.state_recovered")
    assert set(job_ids) <= set(fresh.jobs)
