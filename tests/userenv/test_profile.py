"""Declarative deployment profiles."""

import pytest

from repro.errors import UserEnvError
from repro.sim import Simulator
from repro.userenv.construction import deploy_profile, validate_profile

GOOD = {
    "cluster": {"partitions": 3, "computes": 3},
    "kernel": {"heartbeat_interval": 5.0},
    "users": [{"name": "alice", "password": "pw", "roles": ["scientific"]}],
    "environments": {
        "gridview": {"refresh_interval": 10.0},
        "pws": {"pools": [
            {"name": "batch", "partitions": ["p0", "p1"]},
            {"name": "interactive", "partitions": ["p2"], "policy": "sjf"},
        ]},
        "business": {"partition": "p1"},
    },
}


def test_validate_accepts_good_profile():
    validate_profile(GOOD)


@pytest.mark.parametrize("mutation,needle", [
    (lambda p: p.pop("cluster"), "cluster"),
    (lambda p: p.update(extra={}), "unknown profile sections"),
    (lambda p: p["cluster"].update(flux_capacitors=3), "unknown cluster keys"),
    (lambda p: p["kernel"].update(warp=9), "unknown kernel timing"),
    (lambda p: p["users"].append({"name": "x"}), "user entry"),
    (lambda p: p["environments"].update(slurm={}), "unknown environments"),
    (lambda p: p["environments"]["pws"].update(pools=[]), "at least one pool"),
    (lambda p: p["environments"]["pws"]["pools"].append({"name": "bad"}), "partitions/nodes"),
])
def test_validate_rejects_bad_profiles(mutation, needle):
    import copy

    profile = copy.deepcopy(GOOD)
    mutation(profile)
    with pytest.raises(UserEnvError, match=needle):
        validate_profile(profile)


@pytest.fixture(scope="module")
def deployed():
    sim = Simulator(seed=19)
    kernel, handles = deploy_profile(sim, GOOD)
    return sim, kernel, handles


def test_profile_boots_cluster_and_kernel(deployed):
    sim, kernel, handles = deployed
    assert kernel.booted
    assert kernel.cluster.size == 3 * 5
    assert kernel.timings.heartbeat_interval == 5.0


def test_profile_creates_users(deployed):
    sim, kernel, handles = deployed
    assert kernel.security_service().users() == ["alice"]


def test_profile_installs_environments(deployed):
    sim, kernel, handles = deployed
    assert handles["gridview"].alive
    assert handles["pws"].alive
    assert handles["business"].alive
    assert set(handles["pws"].pm.pools) == {"batch", "interactive"}


def test_profile_pools_follow_partitions(deployed):
    sim, kernel, handles = deployed
    batch = handles["pws"].pm.nodes_in_pool("batch")
    assert batch and all(n.startswith(("p0", "p1")) for n in batch)
    inter = handles["pws"].pm.nodes_in_pool("interactive")
    assert inter and all(n.startswith("p2") for n in inter)


def test_profile_system_is_operational(deployed):
    """End-to-end through the profile-built system: a job runs to done."""
    sim, kernel, handles = deployed
    from tests.userenv.conftest import pws_rpc
    from repro.userenv.pws.server import STATUS, SUBMIT

    reply = pws_rpc(kernel, sim, SUBMIT,
                    {"user": "alice", "nodes": 1, "cpus_per_node": 1, "duration": 5.0,
                     "pool": "batch"})
    assert reply["ok"]
    sim.run(until=sim.now + 15.0)
    assert pws_rpc(kernel, sim, STATUS, {"job_id": reply["job_id"]})["job"]["state"] == "done"


def test_pool_with_unknown_partition_rejected():
    import copy

    profile = copy.deepcopy(GOOD)
    profile["environments"]["pws"]["pools"][0]["partitions"] = ["p99"]
    with pytest.raises(UserEnvError, match="unknown partitions"):
        deploy_profile(Simulator(seed=1), profile)


def test_explicit_node_pool():
    profile = {
        "cluster": {"partitions": 1, "computes": 2},
        "environments": {"pws": {"pools": [{"name": "x", "nodes": ["p0c0", "p0c1"]}]}},
    }
    sim = Simulator(seed=2)
    kernel, handles = deploy_profile(sim, profile)
    assert handles["pws"].pm.nodes_in_pool("x") == ["p0c0", "p0c1"]
