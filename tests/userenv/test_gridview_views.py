"""GridView view mode and the torn-read guard across bulletin failovers."""

import math

from repro.kernel import ports
from repro.userenv.monitoring import (
    CLUSTER_VIEW,
    install_gridview,
    torn_partitions,
)
from tests.userenv.conftest import drive


# -- torn_partitions unit ----------------------------------------------------
def test_torn_partitions_flags_epoch_mismatch():
    a = {"p0": 1, "p1": 2, "p2": 1}
    b = {"p0": 1, "p1": 3, "p2": 1}
    assert torn_partitions(a, b) == ["p1"]
    assert torn_partitions(a, dict(a)) == []
    assert torn_partitions(a, None) == []
    assert torn_partitions({}, a) == []
    # Only partitions present on both sides can disagree.
    assert torn_partitions({"p0": 1}, {"p1": 9}) == []


# -- view mode ---------------------------------------------------------------
def test_view_mode_matches_classic_snapshot(kernel, sim):
    classic = install_gridview(kernel, node_id="p1b0", refresh_interval=5.0)
    viewer = install_gridview(kernel, node_id="p2b0", refresh_interval=5.0, view_mode=True)
    sim.run(until=sim.now + 40.0)
    assert CLUSTER_VIEW in kernel.view_owners
    a, b = classic.latest, viewer.latest
    assert a is not None and b is not None
    assert b.node_count == a.node_count
    assert b.nodes_down == a.nodes_down == 0
    assert b.nodes_reporting == a.nodes_reporting
    assert math.isclose(b.avg_cpu_pct, a.avg_cpu_pct, rel_tol=0.05)
    assert not b.partitions_missing
    view_refreshes = [r for r in sim.trace.iter_records("gridview.refresh")
                      if r.get("view")]
    assert view_refreshes
    # O(groups), not O(nodes): the view refresh ships a handful of rows.
    assert all(r.get("rows") <= 4 for r in view_refreshes)


def test_view_mode_sees_node_failure(kernel, sim, injector):
    viewer = install_gridview(kernel, node_id="p2b0", refresh_interval=5.0, view_mode=True)
    sim.run(until=sim.now + 20.0)
    injector.crash_node("p0c2")
    sim.run(until=sim.now + 40.0)
    snap = viewer.latest
    assert snap.nodes_down == 1
    assert snap.nodes_reporting == snap.node_count - 1


def test_view_mode_survives_owner_failover(kernel, sim, injector):
    viewer = install_gridview(kernel, node_id="p2b0", refresh_interval=5.0, view_mode=True)
    sim.run(until=sim.now + 20.0)
    owner = kernel.view_owners[CLUSTER_VIEW]
    injector.crash_node(kernel.placement[("db", owner)])
    sim.run(until=sim.now + 80.0)
    before = viewer.refreshes
    sim.run(until=sim.now + 20.0)
    assert viewer.refreshes > before  # still refreshing off the rebuilt owner
    assert viewer.latest.time > sim.now - 15.0
    assert not viewer.latest.partitions_missing


# -- torn-read guard (classic mode) ------------------------------------------
def test_classic_refresh_rejects_cross_incarnation_joins(kernel, sim, injector):
    """A bulletin failover between the two classic reads must not fabricate
    a snapshot from two incarnations: watermarks expose the epoch bump."""
    client = kernel.client("p0c0")
    metrics = drive(sim, client.query_bulletin("node_metrics", partition="p0"))
    assert metrics["watermarks"]["p1"] >= 1
    injector.crash_node(kernel.placement[("db", "p1")])
    sim.run(until=sim.now + 60.0)  # detection + takeover on p1
    state = drive(sim, client.query_bulletin("node_state", partition="p0"))
    assert torn_partitions(metrics["watermarks"], state["watermarks"]) == ["p1"]
    # Two fresh reads from the new incarnation agree again.
    fresh = drive(sim, client.query_bulletin("node_metrics", partition="p0"))
    assert torn_partitions(fresh["watermarks"], state["watermarks"]) == []


def test_classic_gridview_keeps_consistent_snapshots_across_failover(kernel, sim, injector):
    gv = install_gridview(kernel, node_id="p2b0", refresh_interval=1.0)
    sim.run(until=sim.now + 10.0)
    injector.crash_node(kernel.placement[("db", "p1")])
    sim.run(until=sim.now + 80.0)
    # Refreshes resumed after the failover and every published snapshot
    # came from a single bulletin incarnation (the guard retried or
    # dropped the torn ones; it never joined across epochs).
    assert gv.latest is not None and gv.latest.time > sim.now - 10.0
    torn_marks = sim.trace.records("gridview.torn_read")
    assert gv.torn_reads == len(torn_marks)
    assert gv.refreshes > 20
