"""Per-user usage accounting in PWS."""

import pytest

from repro.userenv.pws.server import ACCOUNTING, SUBMIT
from tests.userenv.conftest import pws_rpc


def test_accounting_charges_cpu_seconds(kernel, sim, pws):
    pws_rpc(kernel, sim, SUBMIT,
            {"user": "alice", "nodes": 2, "cpus_per_node": 2, "duration": 20.0, "pool": "batch"})
    pws_rpc(kernel, sim, SUBMIT,
            {"user": "bob", "nodes": 1, "cpus_per_node": 4, "duration": 10.0, "pool": "batch"})
    sim.run(until=sim.now + 40.0)
    report = pws_rpc(kernel, sim, ACCOUNTING, {})["users"]
    assert report["alice"]["jobs"] == 1
    assert report["alice"]["done"] == 1
    # 2 nodes x 2 cpus x 20 s = 80 cpu-seconds (tiny dispatch slack allowed).
    assert report["alice"]["cpu_seconds"] == pytest.approx(80.0, abs=1.0)
    assert report["bob"]["cpu_seconds"] == pytest.approx(40.0, abs=1.0)


def test_accounting_running_jobs_charged_to_now(kernel, sim, pws):
    pws_rpc(kernel, sim, SUBMIT,
            {"user": "alice", "nodes": 1, "cpus_per_node": 2, "duration": 500.0, "pool": "batch"})
    sim.run(until=sim.now + 50.0)
    report = pws_rpc(kernel, sim, ACCOUNTING, {})["users"]
    assert 90.0 < report["alice"]["cpu_seconds"] < 110.0  # ~50 s x 2 cpus


def test_accounting_user_filter_and_failures(kernel, sim, pws, injector):
    pws_rpc(kernel, sim, SUBMIT,
            {"user": "alice", "nodes": 1, "cpus_per_node": 1, "duration": 300.0,
             "walltime": 10.0, "pool": "batch"})
    pws_rpc(kernel, sim, SUBMIT,
            {"user": "bob", "nodes": 1, "cpus_per_node": 1, "duration": 5.0, "pool": "batch"})
    sim.run(until=sim.now + 30.0)
    only_alice = pws_rpc(kernel, sim, ACCOUNTING, {"user": "alice"})["users"]
    assert list(only_alice) == ["alice"]
    assert only_alice["alice"]["failed"] == 1  # walltime kill
    # Charged only up to the kill, not the requested 300 s.
    assert only_alice["alice"]["cpu_seconds"] == pytest.approx(10.0, abs=1.0)


def test_accounting_empty(kernel, sim, pws):
    assert pws_rpc(kernel, sim, ACCOUNTING, {})["users"] == {}
