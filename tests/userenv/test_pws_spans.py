"""PWS job spans: schedule -> spawn -> complete as one causal tree."""

from repro.userenv.pws.server import CANCEL, SUBMIT
from tests.userenv.conftest import pws_rpc


def _tree(sim, job_id):
    root = next(r for r in sim.trace.records("pws.job") if r["job"] == job_id)
    children = [r for r in sim.trace.records("pws.")
                if r.fields.get("parent_id") == root["span_id"]]
    return root, children


def test_job_span_decomposes_queue_and_dispatch(kernel, sim, pws):
    reply = pws_rpc(kernel, sim, SUBMIT,
                    {"user": "alice", "nodes": 2, "cpus_per_node": 2,
                     "duration": 10.0, "pool": "batch"})
    assert reply["ok"]
    job_id = reply["job_id"]
    sim.run(until=sim.now + 20.0)

    root, children = _tree(sim, job_id)
    assert root["outcome"] == "done"
    assert root["launches"] == 1 and root["retries"] == 0
    by_cat = {}
    for rec in children:
        by_cat.setdefault(rec.category, []).append(rec)
    # Exactly one queue wait (placement found) and one dispatch fan-out.
    (queue,) = by_cat["pws.queue"]
    (dispatch,) = by_cat["pws.dispatch"]
    assert queue["nodes"] == 2 and dispatch["nodes"] == 2
    assert dispatch["ok"] is True
    # Causal ordering: queued before dispatched before the root closed.
    assert queue["start"] <= dispatch["start"]
    assert dispatch["start"] + dispatch["duration"] <= root["start"] + root["duration"]
    # The parallel-command RPC parents onto the dispatch span, extending
    # the tree into the kernel's transport layer.
    rpcs = [r for r in sim.trace.records("rpc.call")
            if r.fields.get("parent_id") == dispatch["span_id"]]
    assert len(rpcs) == 1 and rpcs[0]["mtype"] == "ppm.pcmd"


def test_cancelled_job_span_closes_with_outcome(kernel, sim, pws):
    reply = pws_rpc(kernel, sim, SUBMIT,
                    {"user": "bob", "nodes": 1, "cpus_per_node": 4,
                     "duration": 500.0, "pool": "batch"})
    job_id = reply["job_id"]
    sim.run(until=sim.now + 2.0)
    assert pws_rpc(kernel, sim, CANCEL, {"job_id": job_id})["ok"]
    sim.run(until=sim.now + 2.0)
    root, _children = _tree(sim, job_id)
    assert root["outcome"] == "cancelled"


def test_no_span_leak_after_jobs_settle(kernel, sim, pws):
    for i in range(3):
        pws_rpc(kernel, sim, SUBMIT,
                {"user": "c", "nodes": 1, "cpus_per_node": 1,
                 "duration": 5.0, "pool": "batch"})
    sim.run(until=sim.now + 30.0)
    assert pws._job_spans == {}
    assert pws._queue_spans == {}
