"""Backfill scheduling policy: small jobs run past a blocked head."""

import pytest

from repro.errors import SchedulingError
from repro.userenv.pws import PoolSpec, install_pws
from repro.userenv.pws.scheduler import head_of_line_blocks, order_queue
from repro.userenv.pws.server import STATUS, SUBMIT
from tests.userenv.conftest import pws_rpc


def test_head_of_line_predicate():
    assert head_of_line_blocks("fifo")
    assert head_of_line_blocks("sjf")
    assert not head_of_line_blocks("backfill")


def test_backfill_orders_like_fifo():
    from repro.userenv.pws.jobs import JobRecord, JobSpec

    jobs = [
        JobRecord(spec=JobSpec("b", "u", 1, 1, 5.0), submitted_at=2.0),
        JobRecord(spec=JobSpec("a", "u", 1, 1, 99.0), submitted_at=1.0),
    ]
    assert [j.spec.job_id for j in order_queue("backfill", jobs)] == ["a", "b"]


def test_pool_accepts_backfill_policy():
    PoolSpec("x", ["n1"], policy="backfill")
    with pytest.raises(SchedulingError):
        PoolSpec("x", ["n1"], policy="easy")


@pytest.fixture()
def backfill_pws(kernel, sim):
    server = install_pws(
        kernel,
        [PoolSpec("bf", kernel.cluster.compute_nodes(), policy="backfill", lendable=False)],
    )
    sim.run(until=sim.now + 2.0)
    return server


def test_small_job_backfills_past_blocked_head(kernel, sim, backfill_pws):
    # 9 compute nodes total; occupy 8 so the 9-node head job cannot start.
    filler = pws_rpc(kernel, sim, SUBMIT,
                     {"user": "f", "nodes": 8, "cpus_per_node": 4, "duration": 300.0, "pool": "bf"})
    sim.run(until=sim.now + 2.0)
    huge = pws_rpc(kernel, sim, SUBMIT,
                   {"user": "h", "nodes": 9, "cpus_per_node": 4, "duration": 10.0, "pool": "bf"})
    small = pws_rpc(kernel, sim, SUBMIT,
                    {"user": "s", "nodes": 1, "cpus_per_node": 4, "duration": 10.0, "pool": "bf"})
    sim.run(until=sim.now + 5.0)
    assert pws_rpc(kernel, sim, STATUS, {"job_id": huge["job_id"]})["job"]["state"] == "queued"
    # Under fifo this would be queued; backfill lets it use the idle node.
    assert pws_rpc(kernel, sim, STATUS, {"job_id": small["job_id"]})["job"]["state"] == "running"
    assert sim.trace.counter("pws.backfill_skips") >= 1


def test_fifo_still_blocks(kernel, sim, pws):
    filler = pws_rpc(kernel, sim, SUBMIT,
                     {"user": "f", "nodes": 5, "cpus_per_node": 4, "duration": 300.0,
                      "pool": "batch"})
    sim.run(until=sim.now + 2.0)
    huge = pws_rpc(kernel, sim, SUBMIT,
                   {"user": "h", "nodes": 99, "cpus_per_node": 1, "duration": 10.0,
                    "pool": "batch"})
    small = pws_rpc(kernel, sim, SUBMIT,
                    {"user": "s", "nodes": 1, "cpus_per_node": 1, "duration": 10.0,
                     "pool": "batch"})
    sim.run(until=sim.now + 5.0)
    assert pws_rpc(kernel, sim, STATUS, {"job_id": small["job_id"]})["job"]["state"] == "queued"
