"""Request workload driver: queueing, balancing strategies, failures."""

import pytest

from repro.errors import UserEnvError
from repro.sim import Simulator, Signal
from repro.userenv.business import BizAppSpec, RequestDriver, TierSpec, install_business_runtime
from repro.userenv.business.requests import ReplicaServer
from repro.userenv.business.runtime import Replica


# -- replica server unit tests -------------------------------------------------


def make_server(capacity=2):
    sim = Simulator()
    replica = Replica(app="a", tier="t", index=0, node="n", healthy=True)
    return sim, ReplicaServer(sim, replica, capacity)


def test_server_grants_up_to_capacity_immediately():
    sim, server = make_server(capacity=2)
    s1, s2 = server.acquire(), server.acquire()
    assert s1.fired and s2.fired
    assert server.busy == 2 and server.load == 2


def test_server_queues_beyond_capacity_fifo():
    sim, server = make_server(capacity=1)
    first = server.acquire()
    second = server.acquire()
    third = server.acquire()
    assert first.fired and not second.fired and not third.fired
    assert server.load == 3
    server.release()
    assert second.fired and not third.fired
    server.release()
    assert third.fired


def test_server_release_without_waiters_frees_slot():
    sim, server = make_server(capacity=1)
    server.acquire()
    server.release()
    assert server.busy == 0
    assert server.acquire().fired


def test_server_capacity_validation():
    with pytest.raises(UserEnvError):
        make_server(capacity=0)


# -- driver integration -------------------------------------------------------


@pytest.fixture()
def hosted(kernel, sim):
    runtime = install_business_runtime(kernel, partition_id="p1")
    sim.run(until=sim.now + 2.0)
    runtime.deploy(BizAppSpec(
        name="shop", tiers=(TierSpec("web", 3, cpus=1), TierSpec("db", 1, cpus=2))))
    sim.run(until=sim.now + 3.0)
    return runtime


def test_driver_serves_traffic_and_measures_latency(kernel, sim, hosted):
    driver = RequestDriver(hosted, "shop", {"web": 0.05, "db": 0.02})
    driver.start(rate_per_s=5.0, duration=30.0)
    sim.run(until=sim.now + 40.0)
    assert driver.stats.failed == 0
    assert driver.stats.completed > 100
    summary = driver.stats.latency_summary()
    # Unloaded latency ~= sum of tier service times.
    assert summary.p50 == pytest.approx(0.07, abs=0.02)
    assert summary.p95 < 0.5


def test_driver_validation(kernel, sim, hosted):
    with pytest.raises(UserEnvError):
        RequestDriver(hosted, "ghost", {"web": 0.1})
    with pytest.raises(UserEnvError):
        RequestDriver(hosted, "shop", {"web": 0.1})  # missing db tier time
    with pytest.raises(UserEnvError):
        RequestDriver(hosted, "shop", {"web": 0.1, "db": 0.1}, strategy="random")
    driver = RequestDriver(hosted, "shop", {"web": 0.1, "db": 0.1})
    with pytest.raises(UserEnvError):
        driver.stats.latency_summary()


def test_overload_queues_raise_latency(kernel, sim, hosted):
    """Offered load beyond capacity shows up as queueing delay."""
    light = RequestDriver(hosted, "shop", {"web": 0.05, "db": 0.02},
                          capacity_per_replica=4, rng_name="light")
    light.start(rate_per_s=3.0, duration=20.0)
    sim.run(until=sim.now + 30.0)
    # db tier: one replica, one slot, 60 ms service at 20 req/s -> rho 1.2,
    # an unstable queue whose wait dominates latency.
    heavy = RequestDriver(hosted, "shop", {"web": 0.05, "db": 0.06},
                          capacity_per_replica=1, rng_name="heavy")
    heavy.start(rate_per_s=20.0, duration=20.0)
    sim.run(until=sim.now + 60.0)
    assert heavy.stats.latency_summary().p95 > 3 * light.stats.latency_summary().p95


def test_least_loaded_beats_round_robin_on_heavy_tails(kernel, sim, hosted):
    rr = RequestDriver(hosted, "shop", {"web": 0.08, "db": 0.02},
                       strategy="round_robin", capacity_per_replica=1,
                       heavy_tail_sigma=1.2, rng_name="rr")
    rr.start(rate_per_s=12.0, duration=60.0)
    sim.run(until=sim.now + 120.0)
    ll = RequestDriver(hosted, "shop", {"web": 0.08, "db": 0.02},
                       strategy="least_loaded", capacity_per_replica=1,
                       heavy_tail_sigma=1.2, rng_name="ll")
    ll.start(rate_per_s=12.0, duration=60.0)
    sim.run(until=sim.now + 120.0)
    assert ll.stats.latency_summary().p95 < rr.stats.latency_summary().p95


def test_requests_fail_when_tier_down_then_recover(kernel, sim, hosted, injector):
    db_replica = next(r for r in hosted.apps["shop"].replicas if r.tier == "db")
    driver = RequestDriver(hosted, "shop", {"web": 0.05, "db": 0.02})
    driver.start(rate_per_s=10.0, duration=120.0)
    sim.run(until=sim.now + 10.0)
    injector.crash_node(db_replica.node)
    sim.run(until=sim.now + 120.0)
    # Some requests failed during the outage window; traffic recovered after.
    assert driver.stats.failed > 0
    assert driver.stats.completed > 200
