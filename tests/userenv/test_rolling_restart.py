"""Rolling kernel restart: maintenance without losing state or coverage."""

import pytest

from repro.errors import UserEnvError
from repro.sim import Simulator
from repro.userenv.construction import ConstructionTool
from tests.kernel.conftest import drive
from tests.kernel.test_events import publish, subscribe_collector


def test_rolling_restart_all_partitions(kernel, sim):
    tool = kernel.construction_tool
    report = tool.rolling_kernel_restart()
    assert report["partitions"] == 3
    assert report["services_restarted"] == 9  # 3 services x 3 partitions
    health = tool.health_report()
    assert health["kernel_healthy"]
    # The restarted instances are genuinely fresh processes.
    assert sim.trace.records("construct.rolling_restart")


def test_subscriptions_survive_rolling_restart(kernel, sim):
    """ES instances reload their checkpointed registries: a consumer
    subscribed before the restart keeps receiving afterwards."""
    inbox = subscribe_collector(kernel, sim, "p0c0", "durable", types=("custom.x",))
    sim.run(until=sim.now + 1.0)  # checkpoint lands
    kernel.construction_tool.rolling_kernel_restart()
    publish(kernel, sim, "p0c1", "custom.x", {"phase": "after"})
    sim.run(until=sim.now + 1.0)
    assert [e.data["phase"] for e in inbox] == ["after"]


def test_rolling_restart_does_not_trip_node_level_alarms(kernel, sim):
    kernel.construction_tool.rolling_kernel_restart()
    sim.run(until=sim.now + 40.0)
    # The restart may race the GSD's own supervision (which heals the gap
    # harmlessly) but must never escalate to node/network diagnoses.
    assert sim.trace.records("failure.diagnosed", kind="node") == []
    assert sim.trace.records("failure.diagnosed", kind="network") == []
    assert sim.trace.records("recovery.failed") == []


def test_rolling_restart_requires_boot():
    tool = ConstructionTool(Simulator())
    with pytest.raises(UserEnvError):
        tool.rolling_kernel_restart()


def test_concurrent_gsd_supervision_does_not_double_start(kernel, sim):
    """If the GSD's check (5 s period in this fixture) fires inside the
    restart window, both paths must coexist — the liveness guard makes
    whichever starter comes second a no-op."""
    tool = kernel.construction_tool
    for _ in range(3):
        tool.rolling_kernel_restart()
        sim.run(until=sim.now + 6.0)
    assert tool.health_report()["kernel_healthy"]
