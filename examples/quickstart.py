#!/usr/bin/env python3
"""Quickstart: boot a Phoenix cluster, watch it heal itself.

Builds a small 3-partition cluster with the system construction tool,
boots the Phoenix kernel onto it, crashes a compute node, and narrates
the detect -> diagnose -> recover pipeline from the kernel's own trace —
the paper's §5.1 story in thirty lines of driver code.

Run:  python examples/quickstart.py
"""

from repro.cluster import ClusterSpec, FaultInjector
from repro.kernel import KernelTimings
from repro.sim import Simulator
from repro.units import fmt_time
from repro.userenv.construction import ConstructionTool


def main() -> None:
    sim = Simulator(seed=7)
    tool = ConstructionTool(sim)

    # configure -> deploy -> boot (paper §3: the construction tool is the
    # cluster's BIOS + kernel boot module).
    kernel = tool.build(
        ClusterSpec.build(partitions=3, computes=4),
        timings=KernelTimings(heartbeat_interval=10.0),
    )
    report = tool.report
    print(f"booted {report.node_count} nodes / {report.partition_count} partitions "
          f"({report.services_started} kernel daemons)")

    # Let two heartbeat rounds pass, then kill a node.
    sim.run(until=20.001)
    victim = "p1c2"
    print(f"\n[t={sim.now:8.3f}s] crashing node {victim} ...")
    FaultInjector(kernel.cluster).crash_node(victim)
    t0 = sim.now
    sim.run(until=t0 + 30.0)

    for category, label in (
        ("failure.detected", "detected"),
        ("failure.diagnosed", "diagnosed"),
        ("failure.recovered", "recovered"),
    ):
        rec = next(r for r in sim.trace.iter_records(category, component="wd") if r.time > t0)
        extra = f" (kind={rec.get('kind')})" if rec.get("kind") else ""
        print(f"[t={rec.time:8.3f}s] {label} after {fmt_time(rec.time - t0)}{extra}")

    print(f"\nGSD's node table: {kernel.gsd('p1').node_state[victim]!r}")

    # Operator repairs the node; heartbeats resume and the kernel notices.
    print(f"\n[t={sim.now:8.3f}s] operator repairs {victim} ...")
    tool.recover_node(victim)
    sim.run(until=sim.now + 15.0)
    print(f"GSD's node table: {kernel.gsd('p1').node_state[victim]!r}")
    print(f"\nhealth report: kernel_healthy={tool.health_report()['kernel_healthy']}")


if __name__ == "__main__":
    main()
