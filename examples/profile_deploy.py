#!/usr/bin/env python3
"""Deploying a whole Phoenix system from a declarative profile.

The system constructor's configuration is a document: hardware shape,
kernel tuning, users, and the user environments to install.  One call
turns it into a running system.

Run:  python examples/profile_deploy.py
"""

from repro.sim import Simulator
from repro.userenv.construction import deploy_profile
from repro.userenv.monitoring import render_snapshot

PROFILE = {
    "cluster": {
        "partitions": 4,
        "computes": 6,
        "networks": ["mgmt", "data", "ipc"],
        "cpus_per_node": 4,
    },
    "kernel": {
        "heartbeat_interval": 10.0,
        "detector_interval": 5.0,
    },
    "users": [
        {"name": "alice", "password": "alice-pw", "roles": ["scientific"]},
        {"name": "ops", "password": "ops-pw", "roles": ["admin", "constructor"]},
    ],
    "environments": {
        "gridview": {"refresh_interval": 15.0},
        "pws": {
            "require_auth": True,
            "pools": [
                {"name": "batch", "partitions": ["p0", "p1", "p2"]},
                {"name": "interactive", "partitions": ["p3"], "policy": "sjf"},
            ],
        },
        "business": {"partition": "p1"},
    },
}


def drive(sim, signal, max_time=10.0):
    deadline = sim.now + max_time
    while not signal.fired and sim.peek() is not None and sim.peek() <= deadline:
        sim.step()
    return signal.value if signal.fired else None


def main() -> None:
    sim = Simulator(seed=23)
    kernel, handles = deploy_profile(sim, PROFILE)
    print(f"profile deployed: {kernel.cluster.size} nodes, "
          f"environments = {sorted(k for k in handles if k != 'tool')}")
    print(f"users: {kernel.security_service().users()}")

    # Authenticated submission straight away.
    login = drive(sim, kernel.client("p3c0").authenticate("alice", "alice-pw"))
    sig = kernel.cluster.transport.rpc(
        "p3c0", kernel.placement[("pws", "p0")], "pws", "pws.submit",
        {"token": login["token"], "nodes": 2, "cpus_per_node": 2,
         "duration": 30.0, "pool": "batch"},
    )
    print(f"authenticated submit: {drive(sim, sig)}")

    sim.run(until=sim.now + 40.0)
    gv = handles["gridview"]
    print()
    print(render_snapshot(gv.latest).split("\n\n")[0])
    print(f"\nhealth: kernel_healthy={handles['tool'].health_report()['kernel_healthy']}")


if __name__ == "__main__":
    main()
