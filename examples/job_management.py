#!/usr/bin/env python3
"""Phoenix-PWS in action: multi-pool scheduling, leasing, and HA (§5.4).

Installs the PWS job management system on a booted kernel, submits a
synthetic trace into two pools (FIFO batch + SJF interactive), triggers
dynamic leasing with an oversized job, crashes a compute node mid-job to
show requeue-on-failure, and finally kills the scheduler process itself
to show the GSD bringing it back with its checkpointed queue.

Run:  python examples/job_management.py
"""

from repro.cluster import ClusterSpec, FaultInjector
from repro.kernel import KernelTimings
from repro.sim import Simulator
from repro.userenv.construction import ConstructionTool
from repro.userenv.pws import PoolSpec, install_pws
from repro.userenv.pws.server import POOLS, STATUS, SUBMIT
from repro.userenv.pws.server import PORT as PWS_PORT
from repro.workloads.jobs import TraceConfig, generate_trace


def main() -> None:
    sim = Simulator(seed=11)
    tool = ConstructionTool(sim)
    kernel = tool.build(
        ClusterSpec.build(partitions=3, computes=6),
        timings=KernelTimings(heartbeat_interval=10.0),
    )
    cluster = kernel.cluster
    sim.run(until=6.0)

    computes = cluster.compute_nodes()
    pools = [
        PoolSpec("batch", [n for n in computes if n.startswith(("p0", "p1"))]),
        PoolSpec("interactive", [n for n in computes if n.startswith("p2")], policy="sjf"),
    ]
    server = install_pws(kernel, pools)
    sim.run(until=sim.now + 2.0)
    print(f"PWS scheduling group running on {server.node_id} "
          f"(pools: {', '.join(p.name for p in pools)})")

    def rpc(mtype, payload):
        node = kernel.placement[("pws", "p0")]
        sig = cluster.transport.rpc("p2c0", node, PWS_PORT, mtype, payload, timeout=5.0)
        while not sig.fired and sim.peek() is not None:
            sim.step()
        return sig.value

    # 1. A synthetic trace into the batch pool.
    trace = generate_trace(8, TraceConfig(max_nodes=3), seed=1)
    ids = []
    for entry in trace:
        reply = rpc(SUBMIT, entry.submit_payload(pool="batch"))
        ids.append(reply["job_id"])
    print(f"submitted {len(ids)} trace jobs to 'batch'")

    # 2. An oversized interactive job forces dynamic leasing.
    big = rpc(SUBMIT, {"user": "leaser", "nodes": 9, "cpus_per_node": 2,
                       "duration": 45.0, "pool": "interactive"})
    sim.run(until=sim.now + 2.0)
    stats = rpc(POOLS, {})
    print(f"oversized job {big['job_id']}: interactive leased "
          f"{stats['pools']['interactive']['leases_in']} nodes from batch")

    # 3. Crash a node running a trace job: the job is requeued elsewhere.
    running = next(j for j in (rpc(STATUS, {"job_id": i})["job"] for i in ids)
                   if j["state"] == "running")
    victim = running["assigned_nodes"][0]
    print(f"crashing {victim} (runs {running['spec']['job_id']}) ...")
    FaultInjector(cluster).crash_node(victim)
    sim.run(until=sim.now + 40.0)
    after = rpc(STATUS, {"job_id": running["spec"]["job_id"]})["job"]
    print(f"  -> job {after['spec']['job_id']} is {after['state']} on {after['assigned_nodes']}"
          f" (requeues so far: {int(sim.trace.counter('pws.requeues'))})")

    # 4. Kill the scheduler itself: GSD restarts it with checkpointed state.
    print("killing the PWS server process ...")
    FaultInjector(cluster).kill_process(kernel.placement[("pws", "p0")], "pws")
    sim.run(until=sim.now + 20.0)
    fresh = kernel.live_daemon("pws", kernel.placement[("pws", "p0")])
    print(f"  -> GSD restarted PWS (alive={fresh.alive}), "
          f"{len(fresh.jobs)} jobs recovered from the checkpoint service")

    # 5. Drain the queue.
    sim.run(until=sim.now + 1200.0)
    summary = rpc(STATUS, {})
    print(f"\nfinal job states: {summary['counts']}")
    assert summary["counts"].get("done", 0) >= len(ids)


if __name__ == "__main__":
    main()
