#!/usr/bin/env python3
"""Business application hosting: multi-tier apps with 7x24 availability.

The paper's motivation for business computing support (§1, §3): cluster
system software "should provide high availability support for business
computing which promises delivering 7x24 service".  This example deploys
a three-tier web shop on the business application runtime, routes
requests through the per-tier load balancer, kills replicas and whole
nodes, and reports measured availability.

Run:  python examples/business_hosting.py
"""

from repro.cluster import ClusterSpec, FaultInjector
from repro.errors import UserEnvError
from repro.kernel import KernelTimings
from repro.sim import Simulator
from repro.userenv.business import BizAppSpec, TierSpec, install_business_runtime
from repro.userenv.construction import ConstructionTool


def serve_requests(runtime, sim, app: str, tier: str, n: int) -> tuple[int, int]:
    ok = failed = 0
    for _ in range(n):
        try:
            runtime.route(app, tier)
            ok += 1
        except UserEnvError:
            failed += 1
        sim.run(until=sim.now + 0.05)
    return ok, failed


def main() -> None:
    sim = Simulator(seed=13)
    tool = ConstructionTool(sim)
    kernel = tool.build(
        ClusterSpec.build(partitions=2, computes=6),
        timings=KernelTimings(heartbeat_interval=10.0),
    )
    sim.run(until=6.0)
    runtime = install_business_runtime(kernel)
    sim.run(until=sim.now + 2.0)

    shop = BizAppSpec(
        name="webshop",
        tiers=(TierSpec("web", replicas=3, cpus=1),
               TierSpec("app", replicas=2, cpus=2),
               TierSpec("db", replicas=1, cpus=2)),
    )
    runtime.deploy(shop)
    sim.run(until=sim.now + 3.0)
    status = runtime.app_status("webshop")
    print(f"deployed webshop: tiers={status['tiers']} serving={status['serving']}")

    ok, failed = serve_requests(runtime, sim, "webshop", "web", 40)
    print(f"served {ok}/{ok + failed} requests through the web-tier balancer")

    injector = FaultInjector(kernel.cluster)
    web_replica = next(r for r in runtime.apps["webshop"].replicas if r.tier == "web")
    print(f"\nkilling web replica process on {web_replica.node} ...")
    injector.kill_process(web_replica.node, f"job.{web_replica.job_id}")
    sim.run(until=sim.now + 5.0)
    print(f"  -> healed: tiers={runtime.app_status('webshop')['tiers']}")

    db_replica = next(r for r in runtime.apps["webshop"].replicas if r.tier == "db")
    print(f"crashing the db tier's node {db_replica.node} "
          f"(single replica: brief outage expected) ...")
    injector.crash_node(db_replica.node)
    sim.run(until=sim.now + 60.0)
    status = runtime.app_status("webshop")
    print(f"  -> healed: tiers={status['tiers']} serving={status['serving']}")

    ok, failed = serve_requests(runtime, sim, "webshop", "web", 40)
    print(f"served {ok}/{ok + failed} requests after recovery")

    sim.run(until=sim.now + 1800.0)
    availability = runtime.app_status("webshop")["availability"]
    downtime = (1 - availability) * (sim.now - runtime.apps["webshop"].deployed_at)
    print(f"\nmeasured availability: {100 * availability:.4f}% "
          f"({downtime:.1f}s of downtime across the run)")


if __name__ == "__main__":
    main()
