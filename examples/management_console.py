#!/usr/bin/env python3
"""The integrated PWS management console (paper Figure 9).

Drives the operator surface the paper's screenshot shows: the job and
pool boards, and the Start/Shutdown Nodes cycle — drain a node, power it
off, watch the kernel's failure pipeline notice, power it back on, and
see it rejoin the schedulable pool.

Run:  python examples/management_console.py
"""

from repro.cluster import ClusterSpec
from repro.kernel import KernelTimings
from repro.sim import Simulator
from repro.userenv.construction import ConstructionTool
from repro.userenv.pws import PoolSpec, install_pws
from repro.userenv.pws.console import ManagementConsole, render_accounting, render_console
from repro.userenv.pws.server import SUBMIT
from repro.userenv.pws.server import PORT as PWS_PORT


def drive(sim, signal, max_time=10.0):
    deadline = sim.now + max_time
    while not signal.fired and sim.peek() is not None and sim.peek() <= deadline:
        sim.step()
    return signal.value if signal.fired else None


def show(console, sim) -> None:
    jobs = drive(sim, console.job_summary())
    pools = drive(sim, console.pool_summary())
    nodes = drive(sim, console.node_status())
    print(render_console(jobs, pools, nodes["rows"]))
    print()


def main() -> None:
    sim = Simulator(seed=17)
    tool = ConstructionTool(sim)
    kernel = tool.build(
        ClusterSpec.build(partitions=2, computes=4),
        timings=KernelTimings(heartbeat_interval=10.0),
    )
    sim.run(until=6.0)
    install_pws(kernel, [PoolSpec("default", kernel.cluster.compute_nodes())])
    sim.run(until=sim.now + 2.0)
    console = ManagementConsole(kernel, tool, "p1c3")

    # Some work in the queue so the boards aren't empty.
    for i in range(3):
        sig = kernel.cluster.transport.rpc(
            "p1c3", kernel.placement[("pws", "p0")], PWS_PORT, SUBMIT,
            {"user": "ops-demo", "nodes": 2, "cpus_per_node": 2, "duration": 120.0,
             "pool": "default"},
        )
        drive(sim, sig)
    sim.run(until=sim.now + 2.0)
    print(">>> initial state")
    show(console, sim)

    target = "p0c1"
    print(f">>> drain + shutdown {target}")
    drive(sim, console.drain_node(target))
    console.shutdown_node(target)
    sim.run(until=sim.now + 15.0)  # kernel detects the power-off
    show(console, sim)

    print(f">>> start {target}")
    drive(sim, console.start_node(target))
    sim.run(until=sim.now + 12.0)  # heartbeats resume
    show(console, sim)

    sim.run(until=sim.now + 150.0)  # let the demo jobs finish
    print(">>> usage accounting")
    print(render_accounting(drive(sim, console.accounting())))


if __name__ == "__main__":
    main()
