#!/usr/bin/env python3
"""Fault-tolerance tour: the nine cells of Tables 1-3, narrated.

For each monitored component (watch daemon, group service daemon, event
service) and each unhealthy situation (process / node / network
interface failure), runs one fault injection on the paper's 136-node
testbed and prints the detecting / diagnosing / recovery times — the
exact measurements of the paper's §5.1, at a configurable heartbeat
interval.

Run:  python examples/fault_tolerance_tour.py [interval_seconds]
"""

import sys

from repro.experiments.fault_tables import (
    COMPONENTS,
    TABLE_TITLES,
    render_table,
    run_table,
)


def main() -> None:
    interval = float(sys.argv[1]) if len(sys.argv) > 1 else 30.0
    print(f"heartbeat interval = {interval:.0f}s "
          f"(the paper's 'system parameter'; it used 30s)\n")
    for component in COMPONENTS:
        print(f"running the three injections behind: {TABLE_TITLES[component]} ...")
        results = run_table(component, heartbeat_interval=interval)
        print(render_table(component, results))
        print()
    print("note: detecting time ~= the heartbeat interval; diagnosis and recovery")
    print("costs are interval-independent — the paper's 'sum is almost equal to")
    print("the interval of sending heartbeat' conclusion.")


if __name__ == "__main__":
    main()
