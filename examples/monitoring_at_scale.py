#!/usr/bin/env python3
"""GridView monitoring the full 640-node Dawning 4000A (§5.3, Figure 6).

Boots a Dawning-4000A-sized cluster (40 partitions x 16 nodes), attaches
the GridView user environment — which talks to nothing but the data
bulletin / event / configuration services — and prints the Figure 6
style status board, live failure notifications, and the scaling
measurements.

Run:  python examples/monitoring_at_scale.py
"""

from repro.cluster import Cluster, ClusterSpec, FaultInjector
from repro.kernel import KernelTimings, PhoenixKernel
from repro.sim import Simulator
from repro.userenv.monitoring import install_gridview, render_events, render_snapshot


def main() -> None:
    sim = Simulator(seed=4, trace_capacity=50_000)
    cluster = Cluster(sim, ClusterSpec.dawning_4000a())
    kernel = PhoenixKernel(cluster, timings=KernelTimings(heartbeat_interval=30.0))
    kernel.boot()
    print(f"booted the Dawning 4000A model: {cluster.size} nodes, "
          f"{len(cluster.partitions)} partitions, 3 networks/node")

    gridview = install_gridview(kernel, refresh_interval=30.0)
    sim.run(until=65.0)

    snap = gridview.latest
    print()
    print(render_snapshot(snap, columns=8).split("\n\n")[0])  # banner only
    print(f"(collection latency: "
          f"{1000 * sim.trace.last('gridview.refresh')['latency']:.2f} ms "
          f"for {snap.nodes_reporting} nodes via ONE federation query)")

    # Break things; GridView hears about each through the event service.
    injector = FaultInjector(cluster)
    injector.crash_node("p13c5")
    injector.fail_nic("p20c2", "data")
    injector.kill_process("p31c0", "wd")
    sim.run(until=sim.now + 70.0)

    print()
    print(render_events(gridview.recent_events(limit=8)))
    snap = gridview.latest
    print(f"\nstatus board now: {snap.nodes_reporting}/{snap.node_count} reporting, "
          f"{snap.nodes_down} down")

    msgs = sum(sim.trace.counter(f"net.{n}.msgs") for n in cluster.networks)
    print(f"total kernel traffic so far: {msgs:.0f} messages "
          f"(~{msgs / cluster.size / sim.now:.2f} per node per second — flat in cluster size)")


if __name__ == "__main__":
    main()
