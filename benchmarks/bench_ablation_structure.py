"""A2/A3 — structural ablations behind §4.3's design argument.

A2: "it is unacceptable for all nodes joining a group managed by group
membership protocol" — a flat (single-partition, master-slave-like)
deployment concentrates all heartbeat traffic on one node; the paper's
partitioning divides it by the partition count.

A3: PPM's tree fan-out makes remote job loading ~log(n) instead of the
serial ~n.
"""

import pytest

from benchmarks.conftest import once
from repro.experiments.ablations import launch_comparison, structure_comparison
from repro.experiments.report import format_dict_rows


@pytest.mark.benchmark(group="ablation")
def test_flat_vs_partitioned_hotspot(benchmark, save_artifact):
    rows = once(benchmark, lambda: structure_comparison(nodes=256))
    flat, partitioned = rows
    save_artifact("ablation_structure", format_dict_rows(
        rows, ["nodes", "partitions", "hottest_node_rx_per_s", "mean_server_rx_per_s"],
        title="A2 — flat group vs partitioned meta-group"))
    assert flat["partitions"] == 1
    assert partitioned["partitions"] == 16
    # The hot spot cools roughly by the partition count.
    ratio = flat["hottest_node_rx_per_s"] / partitioned["hottest_node_rx_per_s"]
    assert ratio > 8.0
    benchmark.extra_info["hotspot_ratio"] = ratio


@pytest.mark.benchmark(group="ablation")
def test_tree_fanout_vs_serial_launch(benchmark, save_artifact):
    rows = once(benchmark, lambda: launch_comparison((8, 16, 32, 64)))
    save_artifact("ablation_launch", format_dict_rows(
        rows, ["targets", "tree_ms", "serial_ms", "speedup"],
        title="A3 — tree fan-out vs serial remote job loading"))
    assert all(r["speedup"] > 1.5 for r in rows)
    speedups = [r["speedup"] for r in rows]
    assert speedups == sorted(speedups)  # grows with target count
    # Serial grows ~linearly; tree stays near-flat.
    assert rows[-1]["serial_ms"] / rows[0]["serial_ms"] > 4.0
    assert rows[-1]["tree_ms"] / rows[0]["tree_ms"] < 3.0
