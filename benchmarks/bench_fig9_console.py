"""Figure 9 — the integrated PWS management console in action.

The paper's screenshot shows the Web GUI's Start/Shutdown Nodes
operation.  This bench drives the full operator cycle — drain a node,
shut it down, watch the kernel notice, bring it back — and renders the
console surface as the artifact.
"""

import pytest

from benchmarks.conftest import once
from repro.cluster import ClusterSpec
from repro.kernel import KernelTimings
from repro.sim import Simulator
from repro.userenv.construction import ConstructionTool
from repro.userenv.pws import PoolSpec, install_pws
from repro.userenv.pws.console import ManagementConsole, render_console


def drive(sim, signal, max_time=10.0):
    deadline = sim.now + max_time
    while not signal.fired and sim.peek() is not None and sim.peek() <= deadline:
        sim.step()
    return signal.value if signal.fired else None


def run_console_cycle(seed: int = 0) -> dict:
    sim = Simulator(seed=seed)
    tool = ConstructionTool(sim)
    kernel = tool.build(
        ClusterSpec.build(partitions=2, computes=4),
        timings=KernelTimings(heartbeat_interval=10.0),
    )
    sim.run(until=6.0)
    install_pws(kernel, [PoolSpec("default", kernel.cluster.compute_nodes())])
    sim.run(until=sim.now + 2.0)
    console = ManagementConsole(kernel, tool, "p1c3")

    target = "p0c1"
    assert drive(sim, console.drain_node(target))["ok"]
    console.shutdown_node(target)
    t_down = sim.now
    sim.run(until=sim.now + 15.0)
    noticed = kernel.gsd("p0").node_state[target] == "down"
    drive(sim, console.start_node(target))
    sim.run(until=sim.now + 12.0)
    back_up = kernel.gsd("p0").node_state[target] == "up"

    jobs = drive(sim, console.job_summary())
    pools = drive(sim, console.pool_summary())
    nodes = drive(sim, console.node_status())
    return {
        "noticed_down": noticed,
        "back_up": back_up,
        "board": render_console(jobs, pools, nodes["rows"]),
        "target": target,
    }


@pytest.mark.benchmark(group="fig9")
def test_fig9_console_start_shutdown_cycle(benchmark, save_artifact):
    result = once(benchmark, run_console_cycle)
    assert result["noticed_down"]
    assert result["back_up"]
    assert f"{result['target']}[UP]" in result["board"]
    save_artifact("fig9_console", result["board"])
