"""Figure 9 — the integrated PWS management console in action.

The paper's screenshot shows the Web GUI's Start/Shutdown Nodes
operation.  This bench drives the full operator cycle — drain a node,
shut it down, watch the kernel notice, bring it back — and renders the
console surface as the artifact.

The **query-storm** bench is the console's read-path scalability claim:
with a bandwidth-modelled fabric, a stream of materialized-view reads
stays flat from 128 to 1024 nodes (one RPC, O(groups) bytes) while the
full-scan ``DB_EXEC`` reference grows super-linearly (it ships O(nodes)
rows to the coordinator every time).
"""

import dataclasses

import pytest

from benchmarks.conftest import once
from repro.cluster import Cluster, ClusterSpec
from repro.experiments.report import format_table
from repro.kernel import KernelTimings, PhoenixKernel
from repro.kernel.bulletin.query import Agg, Query
from repro.sim import Simulator
from repro.userenv.construction import ConstructionTool
from repro.userenv.pws import PoolSpec, install_pws
from repro.userenv.pws.console import ManagementConsole, render_console


def drive(sim, signal, max_time=10.0):
    deadline = sim.now + max_time
    while not signal.fired and sim.peek() is not None and sim.peek() <= deadline:
        sim.step()
    return signal.value if signal.fired else None


def run_console_cycle(seed: int = 0) -> dict:
    sim = Simulator(seed=seed)
    tool = ConstructionTool(sim)
    kernel = tool.build(
        ClusterSpec.build(partitions=2, computes=4),
        timings=KernelTimings(heartbeat_interval=10.0),
    )
    sim.run(until=6.0)
    install_pws(kernel, [PoolSpec("default", kernel.cluster.compute_nodes())])
    sim.run(until=sim.now + 2.0)
    console = ManagementConsole(kernel, tool, "p1c3")

    target = "p0c1"
    assert drive(sim, console.drain_node(target))["ok"]
    console.shutdown_node(target)
    t_down = sim.now
    sim.run(until=sim.now + 15.0)
    noticed = kernel.gsd("p0").node_state[target] == "down"
    drive(sim, console.start_node(target))
    sim.run(until=sim.now + 12.0)
    back_up = kernel.gsd("p0").node_state[target] == "up"

    jobs = drive(sim, console.job_summary())
    pools = drive(sim, console.pool_summary())
    nodes = drive(sim, console.node_status())
    return {
        "noticed_down": noticed,
        "back_up": back_up,
        "board": render_console(jobs, pools, nodes["rows"]),
        "target": target,
    }


@pytest.mark.benchmark(group="fig9")
def test_fig9_console_start_shutdown_cycle(benchmark, save_artifact):
    result = once(benchmark, run_console_cycle)
    assert result["noticed_down"]
    assert result["back_up"]
    assert f"{result['target']}[UP]" in result["board"]
    save_artifact("fig9_console", result["board"])


# -- query storm: flat view reads vs super-linear full scans -----------------

STORM_QUERY = Query(
    table="nodes",
    group_by=("state",),
    aggs=(
        Agg("count", "*", "n"),
        Agg("sum", "reporting", "reporting"),
        Agg("avg", "cpu_pct", "cpu"),
        Agg("max", "cpu_pct", "cpu_max"),
    ),
)

#: Fabric bandwidth for the storm (bytes/s) — makes reply *size* part of
#: per-query latency, which is the whole point of the comparison: the
#: full scan ships O(nodes-per-partition) rows per fan-out leg, the view
#: read ships O(groups) rows total.
STORM_BANDWIDTH = 1e6


def run_query_storm(partitions: int, computes: int, seed: int = 0, queries: int = 12) -> dict:
    """One storm at one scale: alternate view reads and full scans."""
    spec = ClusterSpec.build(partitions=partitions, computes=computes)
    spec = dataclasses.replace(
        spec,
        networks=tuple(
            dataclasses.replace(n, bandwidth=STORM_BANDWIDTH) for n in spec.networks
        ),
    )
    sim = Simulator(seed=seed, trace_capacity=10_000)
    cluster = Cluster(sim, spec)
    timings = KernelTimings(
        heartbeat_interval=10.0, es_indexed_where_keys=("node", "table")
    )
    kernel = PhoenixKernel(cluster, timings=timings)
    kernel.boot()
    sim.run(until=25.0)  # detectors exporting everywhere
    # Client on a compute node: the partition server hosts the bulletin,
    # whose bulk flows (checkpoints, deltas) would otherwise FIFO-queue
    # ahead of our replies and pollute the latency measurement.
    client = kernel.client("p0c0")
    reply = drive(sim, client.register_view("storm.nodes", STORM_QUERY, partition="p1"),
                  max_time=120.0)
    assert reply and reply.get("ok"), reply
    sim.run(until=sim.now + 5.0)

    view_lats, exec_lats = [], []
    for _ in range(queries):
        t = sim.now
        assert drive(sim, client.read_view("storm.nodes"), max_time=60.0) is not None
        view_lats.append(sim.now - t)
        t = sim.now
        assert drive(sim, client.exec_query(STORM_QUERY), max_time=120.0) is not None
        exec_lats.append(sim.now - t)
        sim.run(until=sim.now + 1.0)
    return {
        "nodes": cluster.size,
        "view_mean_s": sum(view_lats) / len(view_lats),
        "exec_mean_s": sum(exec_lats) / len(exec_lats),
        "queries": queries,
    }


def run_query_storm_scaling(seed: int = 0) -> dict:
    """128 vs 1024 nodes: view reads must stay flat, full scans must not."""
    small = run_query_storm(partitions=8, computes=14, seed=seed)    # 128 nodes
    large = run_query_storm(partitions=16, computes=62, seed=seed)   # 1024 nodes
    return {
        "small": small,
        "large": large,
        "view_ratio": large["view_mean_s"] / small["view_mean_s"],
        "exec_ratio": large["exec_mean_s"] / small["exec_mean_s"],
    }


def render_query_storm(result: dict) -> str:
    """The storm artifact: per-scale latencies + growth ratios."""
    rows = [
        [r["nodes"], r["queries"], f"{r['view_mean_s'] * 1e3:.3f} ms",
         f"{r['exec_mean_s'] * 1e3:.3f} ms"]
        for r in (result["small"], result["large"])
    ]
    rows.append(["ratio", "",
                 f"{result['view_ratio']:.2f}x", f"{result['exec_ratio']:.2f}x"])
    return format_table(
        ["nodes", "queries", "view read (IVM)", "full scan (DB_EXEC)"],
        rows,
        title=(
            "Query storm - materialized view vs full-scan latency "
            f"({STORM_BANDWIDTH / 1e6:.0f} MB/s fabric)"
        ),
    )


@pytest.mark.benchmark(group="fig9")
def test_fig9_query_storm_flat_view_latency(benchmark, save_artifact):
    result = once(benchmark, run_query_storm_scaling)
    # IVM read path: flat within 1.5x across an 8x node-count jump.
    assert result["view_ratio"] <= 1.5, result
    # Full-scan reference: super-linear in shipped rows, must clearly grow.
    assert result["exec_ratio"] >= 2.0, result
    benchmark.extra_info["storm"] = {
        "view_mean_128_s": result["small"]["view_mean_s"],
        "view_mean_1024_s": result["large"]["view_mean_s"],
        "exec_mean_128_s": result["small"]["exec_mean_s"],
        "exec_mean_1024_s": result["large"]["exec_mean_s"],
        "view_ratio": result["view_ratio"],
        "exec_ratio": result["exec_ratio"],
    }
    save_artifact("fig9_query_storm", render_query_storm(result))
