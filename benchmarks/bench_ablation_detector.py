"""A6 — failure-detector quality on lossy fabrics.

Quantifies the redundant-heartbeat design's robustness: per-NIC
suspicions rise roughly linearly with loss (one dropped beat looks like
a quiet NIC and clears on the next beat), while *false verdicts* against
healthy nodes need a triple-drop followed by failed probes — vanishingly
rare below a few percent loss, and self-correcting when they happen
(restarting a live daemon is refused; the monitor resumes on the next
beat).
"""

import pytest

from benchmarks.conftest import once
from repro.experiments.ablations import detector_quality_sweep
from repro.experiments.report import format_dict_rows


@pytest.mark.benchmark(group="ablation")
def test_detector_quality_under_loss(benchmark, save_artifact):
    rows = once(benchmark, lambda: detector_quality_sweep((0.0, 0.01, 0.05, 0.10)))
    save_artifact("ablation_detector", format_dict_rows(
        rows,
        ["loss_rate", "nic_suspicions", "full_misses", "false_verdicts",
         "suspicions_per_node_hour"],
        title="A6 — failure-detector quality on lossy fabrics (quiet cluster)"))
    by_loss = {r["loss_rate"]: r for r in rows}
    # Clean fabrics: dead silent.
    assert by_loss[0.0]["nic_suspicions"] == 0
    assert by_loss[0.0]["false_verdicts"] == 0
    # 1% loss: benign per-NIC suspicions only, no false verdicts.
    assert by_loss[0.01]["nic_suspicions"] > 0
    assert by_loss[0.01]["false_verdicts"] == 0
    # Suspicions grow with loss; false verdicts stay rare even at 10%.
    assert by_loss[0.10]["nic_suspicions"] > by_loss[0.01]["nic_suspicions"]
    assert by_loss[0.10]["false_verdicts"] <= 5
    benchmark.extra_info["rows"] = rows
