"""Table 1 — three unhealthy situations for the watch daemon (§5.1).

Paper (30 s heartbeat): process 30/0.29/~0.1 s; node 30/2/0 s;
network 30 s/348 us/0 s.
"""

import pytest

from benchmarks.conftest import once
from repro.experiments.fault_tables import render_table, run_table


@pytest.mark.benchmark(group="table1")
def test_table1_wd(benchmark, save_artifact):
    results = once(benchmark, lambda: run_table("wd", heartbeat_interval=30.0))
    save_artifact("table1_wd", render_table("wd", results))
    by_situation = {r.situation: r for r in results}
    for r in results:
        assert r.detect == pytest.approx(30.1, abs=0.3)
    assert by_situation["process"].diagnose == pytest.approx(0.29, abs=0.02)
    assert by_situation["process"].recover == pytest.approx(0.1, abs=0.05)
    assert by_situation["node"].diagnose == pytest.approx(2.03, abs=0.1)
    assert by_situation["node"].recover == 0.0
    assert by_situation["network"].diagnose == pytest.approx(348e-6, rel=0.05)
    assert by_situation["network"].recover == 0.0
    # "the sum ... is almost equal to the interval of sending heartbeat"
    assert all(r.total == pytest.approx(30.0, abs=3.0) for r in results)
    benchmark.extra_info["rows"] = {
        r.situation: [r.detect, r.diagnose, r.recover] for r in results
    }
