"""A1 — heartbeat interval sweep (§5.1's "system parameter" claim).

The paper sets 30 s "for testing" and notes the latency sum "is almost
equal to the interval of sending heartbeat".  Sweeping the parameter
shows the sum tracking the interval with a constant ~0.5 s protocol tax,
and random-phase injection shows the flat detection figure is a
methodology artifact (expected detection ~ interval/2 + grace otherwise).
"""

import pytest

from benchmarks.conftest import once
from repro.experiments.ablations import heartbeat_sweep, random_phase_detection
from repro.experiments.report import format_dict_rows


@pytest.mark.benchmark(group="ablation")
def test_heartbeat_interval_sweep(benchmark, save_artifact):
    rows = once(benchmark, lambda: heartbeat_sweep((5.0, 10.0, 30.0, 60.0)))
    save_artifact("ablation_heartbeat", format_dict_rows(
        rows,
        ["interval_s", "detect_s", "diagnose_s", "recover_s", "sum_s", "sum_minus_interval_s"],
        title="A1 — heartbeat interval sweep"))
    # Sum tracks the interval with a constant tax.
    taxes = [r["sum_minus_interval_s"] for r in rows]
    assert max(taxes) - min(taxes) < 0.1
    assert all(0.3 < tax < 1.0 for tax in taxes)
    # Detection ~= the interval itself under beat-aligned injection.
    for r in rows:
        assert r["detect_s"] == pytest.approx(r["interval_s"] + 0.1, abs=0.2)


@pytest.mark.benchmark(group="ablation")
def test_random_phase_detection_spread(benchmark):
    latencies = once(benchmark, lambda: random_phase_detection(interval=10.0, seeds=(1, 2, 3)))
    # Still bounded by interval + grace, but no longer pinned to it.
    assert all(lat < 10.3 for lat in latencies)
    benchmark.extra_info["latencies"] = latencies
