"""Fault campaign — Tables 1–3 as distributions (extension).

Random-phase, random-target injections across five fault classes.  The
headline checks: 100% detection/recovery coverage; detection spread
matches the U(grace, interval+grace) theory instead of the paper's flat
beat-aligned number; diagnosis and recovery latencies are phase-
independent and match the single-shot tables.
"""

import pytest

from benchmarks.conftest import once
from repro.experiments.fault_campaign import render_campaign, run_campaign
from repro.util import summarize


@pytest.mark.benchmark(group="campaign")
def test_fault_campaign(benchmark, save_artifact):
    results = once(benchmark, lambda: run_campaign(injections=8, seed=0))
    save_artifact("fault_campaign", render_campaign(results))
    for klass, r in results.items():
        assert r.coverage == 1.0, klass
    detect_all = [d for r in results.values() for d in r.detect]
    s = summarize(detect_all)
    # 10 s heartbeat, random phase: mean near interval/2, max below interval+grace.
    assert 3.0 < s.mean < 8.0
    assert s.max <= 10.3
    # Diagnosis stays class-determined (e.g. wd/node ~= 2.03 s at any phase).
    node_diag = summarize(results[("wd", "node")].diagnose)
    assert node_diag.mean == pytest.approx(2.03, abs=0.05)
    benchmark.extra_info["detect_mean_s"] = s.mean
