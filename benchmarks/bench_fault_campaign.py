"""Fault campaign — Tables 1–3 as distributions (extension).

Random-phase, random-target injections across five fault classes.  The
headline checks: 100% detection/recovery coverage; detection spread
matches the U(grace, interval+grace) theory instead of the paper's flat
beat-aligned number; diagnosis and recovery latencies are phase-
independent and match the single-shot tables.
"""

import pytest

from benchmarks.conftest import once
from repro.experiments.fault_campaign import (
    check_gray_campaign,
    check_partition_campaign,
    render_campaign,
    render_gray_campaign,
    render_partition_campaign,
    run_campaign,
    run_gray_campaign,
    run_partition_campaign,
)
from repro.util import summarize


@pytest.mark.benchmark(group="campaign")
def test_fault_campaign(benchmark, save_artifact):
    results = once(benchmark, lambda: run_campaign(injections=8, seed=0))
    save_artifact("fault_campaign", render_campaign(results))
    for klass, r in results.items():
        assert r.coverage == 1.0, klass
    detect_all = [d for r in results.values() for d in r.detect]
    s = summarize(detect_all)
    # 10 s heartbeat, random phase: mean near interval/2, max below interval+grace.
    assert 3.0 < s.mean < 8.0
    assert s.max <= 10.3
    # Diagnosis stays class-determined (e.g. wd/node ~= 2.03 s at any phase).
    node_diag = summarize(results[("wd", "node")].diagnose)
    assert node_diag.mean == pytest.approx(2.03, abs=0.05)
    benchmark.extra_info["detect_mean_s"] = s.mean


@pytest.mark.benchmark(group="campaign")
def test_gray_failure_campaign(benchmark, save_artifact):
    """Gray failures: loss, flaps, one-way splits (robustness extension).

    The gates mirror the CI check: same-epoch dual leadership can never
    happen, 20 % loss must not trigger failovers, and every flap edge /
    asymmetric split must be handled (detected, epoch-fenced takeover,
    stale leader stood down post-heal).
    """
    results = once(benchmark, lambda: run_gray_campaign(injections=4, seed=0))
    save_artifact("gray_failure_campaign", render_gray_campaign(results))
    assert check_gray_campaign(results) == []
    loss, flap, split = (results[k] for k in ("link-loss", "link-flap", "asym-split"))
    # 20 % one-way loss: observed (covered) but ridden out by suspicion decay.
    assert loss.coverage == 1.0 and loss.spurious_failovers == 0
    assert loss.suspected > 0  # the detector did notice the drops
    # Flaps: every down edge detected as a NIC fault within interval+grace.
    assert flap.coverage == 1.0
    assert flap.detect and max(flap.detect) <= 10.3
    # Asymmetric split: exactly one epoch-bumped takeover per injection,
    # zero same-epoch dual-leader intervals, stale side reconciled.
    assert split.coverage == 1.0
    assert split.dual_leader_intervals == 0
    assert split.stale_leader_time > 0  # the hazard was real, and contained
    benchmark.extra_info["gray_suspected"] = loss.suspected + flap.suspected
    benchmark.extra_info["gray_stale_belief_s"] = split.stale_leader_time
    benchmark.extra_info["gray_takeover_mean_s"] = summarize(split.detect).mean


@pytest.mark.benchmark(group="campaign")
def test_partition_campaign(benchmark, save_artifact):
    """Split-brain torture: quorum-gated regroup (DESIGN.md §15).

    The gates mirror `python -m repro campaign --partition --check`:
    zero same-epoch dual-leader intervals, zero minority-accepted
    placement/checkpoint writes, every park paired with an unpark, and
    pure latency inflation ridden out with no parks or takeovers.
    """
    results = once(benchmark, lambda: run_partition_campaign(injections=2, seed=0))
    save_artifact("partition_campaign", render_partition_campaign(results))
    assert check_partition_campaign(results) == []
    for kind, r in results.items():
        assert r.coverage == 1.0, kind
        assert r.dual_leader_intervals == 0, kind
        assert r.minority_placement_writes == 0, kind
        assert r.minority_ckpt_writes == 0, kind
    even, clean, latency = (
        results[k] for k in ("even-split", "clean-split", "fabric-latency")
    )
    assert even.takeovers == 0  # tie-break keeps the p0-side leader
    assert even.parks == even.unparks == 4  # both minority partitions, twice
    assert clean.takeovers == 2  # princess side takes over, once per injection
    assert latency.parks == 0 and latency.takeovers == 0
    parks_total = sum(r.parks for r in results.values())
    park_detect = [d for r in results.values() for d in r.detect]
    benchmark.extra_info["partition_parks"] = parks_total
    benchmark.extra_info["partition_park_mean_s"] = summarize(park_detect).mean
    benchmark.extra_info["partition_takeovers"] = sum(
        r.takeovers for r in results.values()
    )
