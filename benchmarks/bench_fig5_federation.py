"""Figure 5 — data bulletin service federation (single access point).

Measures the federation's two properties on the 136-node paper testbed:
any of the 8 instances answers a cluster-wide query with all 136 rows in
milliseconds, and killing one instance hides exactly one partition until
the GSD restarts it.
"""

import pytest

from benchmarks.conftest import once
from repro.cluster import Cluster, ClusterSpec, FaultInjector
from repro.experiments.report import format_table
from repro.kernel import KernelTimings, PhoenixKernel
from repro.kernel.bulletin.service import TABLE_NODE_METRICS
from repro.sim import Simulator


def run_federation_probe(seed: int = 0) -> dict:
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, ClusterSpec.paper_fault_testbed())
    kernel = PhoenixKernel(cluster, timings=KernelTimings(heartbeat_interval=30.0))
    kernel.boot()
    sim.run(until=7.0)  # detectors exported

    def query_via(partition: str) -> tuple[int, list[str], float]:
        start = sim.now
        sig = kernel.client("p7c3").query_bulletin(TABLE_NODE_METRICS, partition=partition)
        while not sig.fired and sim.peek() is not None:
            sim.step()
        reply = sig.value
        return len(reply["rows"]), reply["partitions_missing"], sim.now - start

    per_entry = {pid: query_via(pid) for pid in ("p0", "p3", "p7")}

    injector = FaultInjector(cluster)
    injector.kill_process(kernel.placement[("db", "p2")], "db")
    rows_degraded, missing_degraded, _ = query_via("p0")

    # GSD notices at its next service-group check and restarts the DB;
    # detectors refill it within one export interval.
    sim.run(until=sim.now + 40.0)
    rows_healed, missing_healed, _ = query_via("p0")
    return {
        "per_entry": per_entry,
        "degraded": (rows_degraded, missing_degraded),
        "healed": (rows_healed, missing_healed),
        "cluster_size": cluster.size,
    }


@pytest.mark.benchmark(group="fig5")
def test_fig5_single_access_point(benchmark, save_artifact):
    result = once(benchmark, run_federation_probe)
    n = result["cluster_size"]
    assert n == 136
    # Any instance returns the whole cluster's rows.
    for pid, (rows, missing, latency) in result["per_entry"].items():
        assert rows == n, pid
        assert missing == []
        assert latency < 0.05
    # One dead instance hides exactly its partition (17 nodes).
    rows_degraded, missing_degraded = result["degraded"]
    assert missing_degraded == ["p2"]
    assert rows_degraded == n - 17
    # And the GSD restores full coverage.
    rows_healed, missing_healed = result["healed"]
    assert missing_healed == []
    assert rows_healed == n
    body = [
        [pid, rows, f"{1000 * latency:.2f}ms"]
        for pid, (rows, _, latency) in result["per_entry"].items()
    ]
    body.append(["p0 (db@p2 dead)", rows_degraded, f"missing={missing_degraded}"])
    body.append(["p0 (healed)", rows_healed, "missing=[]"])
    save_artifact("fig5_federation", format_table(
        ["access point", "rows", "latency / note"], body,
        title="Figure 5 — bulletin federation on the 136-node testbed"))
