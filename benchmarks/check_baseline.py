"""Compare a smoke-bench JSON against the stored baseline.

The smoke benchmarks record two kinds of numbers: *deterministic*
simulation metrics in ``extra_info`` (recovery latencies, batching
counters, per-node traffic — same seed, same answer on any machine) and
*wall-clock* timings in ``stats`` (vary with the runner).  The checker
holds the deterministic metrics to a tight relative tolerance and only
sanity-checks wall time against a generous slow-down factor, so CI
catches behavioural regressions without flaking on runner speed.

Usage::

    python benchmarks/check_baseline.py BENCH_PR1.json
    python benchmarks/check_baseline.py BENCH_PR1.json --update  # refresh baseline

Exit status 0 when every baseline benchmark is present and within
tolerance, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_BASELINE.json"
#: Relative tolerance for deterministic extra_info metrics.
REL_TOL = 0.15
#: A run may be this many times slower than baseline before CI complains.
TIME_FACTOR = 5.0
#: ``extra_info`` keys with this prefix are host-speed measurements
#: (events/sec, marks/sec) recorded for the record but never compared —
#: only the deterministic keys gate.
WALLCLOCK_PREFIX = "wallclock_"
#: ``extra_info`` keys with this prefix are scaling costs gated
#: one-sided: CI fails only when the current run *exceeds* baseline +
#: tolerance (super-linear growth regression), while improvements pass
#: without a baseline refresh.
GROWTH_PREFIX = "growth_"


def load_results(path: Path) -> dict[str, dict[str, Any]]:
    """Reduce a pytest-benchmark JSON to {name: {mean_s, extra_info}}."""
    data = json.loads(path.read_text())
    return {
        bench["name"]: {
            "mean_s": bench["stats"]["mean"],
            "extra_info": bench.get("extra_info", {}),
        }
        for bench in data["benchmarks"]
    }


def _close(expected: float, actual: float, rel_tol: float) -> bool:
    if expected == actual:
        return True
    scale = max(abs(expected), abs(actual))
    return abs(expected - actual) <= rel_tol * scale


def compare_values(
    expected: Any,
    actual: Any,
    rel_tol: float,
    path: str,
    problems: list[str],
    one_sided: bool = False,
) -> None:
    """Recursively compare extra_info values; numbers get ``rel_tol``.

    ``one_sided`` (inherited by everything under a ``growth_`` key)
    flags only increases beyond tolerance, never decreases."""
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in expected:
            if isinstance(key, str) and key.startswith(WALLCLOCK_PREFIX):
                continue  # informational host-speed number, never gated
            if key not in actual:
                problems.append(f"{path}.{key}: missing from current run")
            else:
                compare_values(
                    expected[key], actual[key], rel_tol, f"{path}.{key}", problems,
                    one_sided=one_sided
                    or (isinstance(key, str) and key.startswith(GROWTH_PREFIX)),
                )
        return
    if isinstance(expected, bool) or isinstance(actual, bool):  # bool is an int; compare exactly
        if expected != actual:
            problems.append(f"{path}: expected {expected!r}, got {actual!r}")
        return
    if isinstance(expected, (int, float)) and isinstance(actual, (int, float)):
        if one_sided:
            if actual > expected and not _close(float(expected), float(actual), rel_tol):
                problems.append(
                    f"{path}: {actual!r} exceeds baseline {expected!r} "
                    f"by more than {rel_tol:.0%} (one-sided growth guard)"
                )
        elif not _close(float(expected), float(actual), rel_tol):
            problems.append(
                f"{path}: {actual!r} outside ±{rel_tol:.0%} of baseline {expected!r}"
            )
        return
    if expected != actual:
        problems.append(f"{path}: expected {expected!r}, got {actual!r}")


def check(
    baseline: dict[str, dict[str, Any]],
    current: dict[str, dict[str, Any]],
    rel_tol: float = REL_TOL,
    time_factor: float = TIME_FACTOR,
) -> list[str]:
    """Every baseline benchmark must be present and within tolerance."""
    problems: list[str] = []
    for name, expected in sorted(baseline.items()):
        got = current.get(name)
        if got is None:
            problems.append(f"{name}: benchmark missing from current run")
            continue
        if got["mean_s"] > time_factor * expected["mean_s"]:
            problems.append(
                f"{name}.mean_s: {got['mean_s']:.3f}s is more than "
                f"{time_factor:g}x baseline {expected['mean_s']:.3f}s"
            )
        compare_values(
            expected["extra_info"], got["extra_info"], rel_tol,
            f"{name}.extra_info", problems,
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", type=Path, help="pytest-benchmark JSON from this run")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--rel-tol", type=float, default=REL_TOL)
    parser.add_argument("--time-factor", type=float, default=TIME_FACTOR)
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this run instead of checking")
    args = parser.parse_args(argv)

    current = load_results(args.results)
    if args.update:
        args.baseline.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
        print(f"baseline updated: {args.baseline} ({len(current)} benchmarks)")
        return 0

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; run with --update to create one")
        return 1
    baseline = json.loads(args.baseline.read_text())
    problems = check(baseline, current, rel_tol=args.rel_tol, time_factor=args.time_factor)
    if problems:
        print(f"baseline check FAILED ({len(problems)} problem(s)):")
        for problem in problems:
            print(f"  - {problem}")
        refresh = f"python benchmarks/check_baseline.py {args.results} --update"
        if args.baseline != DEFAULT_BASELINE:
            refresh += f" --baseline {args.baseline}"
        print("If the new numbers are intentional, refresh the baseline with:")
        print(f"  {refresh}")
        return 1
    print(f"baseline check passed: {len(baseline)} benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
