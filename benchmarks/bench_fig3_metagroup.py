"""Figure 3 — meta-group ring with Leader/Princess takeover.

Reproduces the five-member meta-group of the paper's figure and measures
the takeover chain: Leader fails -> Princess takes over; Princess fails
-> the next member takes over; every failed partition's GSD migrates to
its backup node and rejoins.
"""

import pytest

from benchmarks.conftest import once
from repro.cluster import Cluster, ClusterSpec, FaultInjector
from repro.experiments.report import format_table
from repro.kernel import KernelTimings, PhoenixKernel
from repro.sim import Simulator


def run_takeover_chain(seed: int = 0, interval: float = 30.0) -> dict:
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, ClusterSpec.build(partitions=5, computes=2))
    kernel = PhoenixKernel(cluster, timings=KernelTimings(heartbeat_interval=interval))
    kernel.boot()
    injector = FaultInjector(cluster)
    sim.run(until=2 * interval + 0.001)

    # 1. Kill the Leader's node.
    t_leader_fault = sim.now
    injector.crash_node("p0s0")
    sim.run(until=sim.now + 3 * interval)
    takeover = sim.trace.first("leader.takeover")
    leader_takeover_latency = takeover.time - t_leader_fault

    # 2. Kill the new Leader (the original Princess) too.
    t_princess_fault = sim.now
    injector.crash_node(takeover["new"])
    sim.run(until=sim.now + 3 * interval)
    second = [r for r in sim.trace.records("leader.takeover") if r.time > t_princess_fault]

    views = {
        p.partition_id: kernel.gsd(p.partition_id).metagroup.view
        for p in cluster.partitions
    }
    return {
        "first_new_leader": takeover["new"],
        "second_new_leader": second[0]["new"],
        "leader_takeover_latency": leader_takeover_latency,
        "second_takeover_latency": second[0].time - t_princess_fault,
        "final_members": views["p2"].members,
        "view_ids": {pid: v.view_id for pid, v in views.items()},
        "final_leader_placement": kernel.placement[("metagroup", "leader")],
    }


@pytest.mark.benchmark(group="fig3")
def test_fig3_takeover_chain(benchmark, save_artifact):
    result = once(benchmark, run_takeover_chain)
    # Princess (p1s0) takes over the Leader; then p2s0 takes over her.
    assert result["first_new_leader"] == "p1s0"
    assert result["second_new_leader"] == "p2s0"
    assert result["final_leader_placement"] == "p2s0"
    # Takeover completes within detection + diagnosis of one failure.
    assert result["leader_takeover_latency"] == pytest.approx(30.4, abs=1.0)
    # All surviving members agree on one view, and both failed partitions
    # rejoined from their backup nodes.
    assert len(set(result["view_ids"].values())) == 1
    members = dict(result["final_members"])
    assert members["p0"] == "p0b0"
    assert members["p1"] == "p1b0"
    rows = [
        ["leader takeover", result["first_new_leader"], f"{result['leader_takeover_latency']:.2f}s"],
        ["princess takeover", result["second_new_leader"], f"{result['second_takeover_latency']:.2f}s"],
        ["final view", str(result["final_members"]), ""],
    ]
    save_artifact("fig3_metagroup", format_table(
        ["event", "outcome", "latency"], rows,
        title="Figure 3 — meta-group takeover chain (5 members)"))
