"""Figure 4 — event service group supervised by the GSD.

Reproduces both recovery arms of the figure: (a) the ES process dies and
the local GSD restarts it, state restored from the checkpoint service;
(b) the ES's node dies and the service migrates with the GSD to the
backup node, again restoring state.  In both cases an event consumer
registered *before* the failure keeps receiving events *after* it.
"""

import pytest

from benchmarks.conftest import RESULTS_DIR, once
from repro.cluster import Cluster, ClusterSpec, FaultInjector
from repro.experiments.report import format_table
from repro.kernel import KernelTimings, PhoenixKernel, ports
from repro.kernel.events.types import Event
from repro.sim import Simulator


def run_es_recovery(
    kind: str, seed: int = 0, interval: float = 30.0, trace_path: str | None = None
) -> dict:
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, ClusterSpec.build(partitions=3, computes=3))
    kernel = PhoenixKernel(cluster, timings=KernelTimings(heartbeat_interval=interval))
    kernel.boot()
    injector = FaultInjector(cluster)
    sim.run(until=5.0)

    inbox = []
    cluster.transport.bind(
        "p1c0", "sink", lambda m: inbox.append(Event.from_payload(m.payload["event"]))
    )
    sig = kernel.client("p1c0").subscribe("durable-consumer", "sink", types=("custom.event",),
                                          partition="p1")
    sim.run(until=sim.now + 2.0)
    assert sig.value and sig.value["ok"]

    sim.run(until=2 * interval + 0.001)
    t0 = sim.now
    if kind == "process":
        injector.kill_process("p1s0", "es")
    else:
        injector.crash_node("p1s0")
    sim.run(until=sim.now + 2.5 * interval)
    recovered = [r for r in sim.trace.records("failure.recovered", component="es") if r.time > t0]
    state_recovered = [r for r in sim.trace.records("es.state_recovered") if r.time > t0]

    # Publish after recovery: the surviving subscription must still work.
    kernel.client("p1c1").publish("custom.event", {"phase": "after"}, partition="p1")
    sim.run(until=sim.now + 1.0)
    if trace_path is not None:
        sim.trace.export_jsonl(trace_path)
    return {
        "recovery_latency": recovered[0].time - t0 if recovered else None,
        "state_recovered_subs": state_recovered[0]["subs"] if state_recovered else 0,
        "delivered_after_recovery": [e.data.get("phase") for e in inbox],
        "es_location": kernel.placement[("es", "p1")],
        "hist": {
            name: hist.summary()
            for name, hist in sorted(sim.trace.histograms().items())
            if name in ("rpc.call", "es.deliver", "gsd.failover", "gsd.diagnose", "gsd.recover")
        },
    }


@pytest.mark.benchmark(group="fig4")
def test_fig4_process_failure_arm(benchmark, save_artifact):
    # The exported trace doubles as the CI smoke input for the trace CLI
    # (span tree + histograms + failover critical path).
    trace_path = RESULTS_DIR / "fig4_es_trace.jsonl"
    result = once(benchmark, lambda: run_es_recovery("process", trace_path=str(trace_path)))
    assert result["recovery_latency"] == pytest.approx(30.1, abs=1.0)
    assert result["state_recovered_subs"] == 1
    assert result["delivered_after_recovery"] == ["after"]
    assert result["es_location"] == "p1s0"  # restarted in place
    assert trace_path.exists()
    assert result["hist"]["gsd.failover"]["count"] >= 1
    benchmark.extra_info["recovery_latency_s"] = result["recovery_latency"]
    benchmark.extra_info["state_recovered_subs"] = result["state_recovered_subs"]
    benchmark.extra_info["hist"] = {
        name: {"p50": s["p50"], "p95": s["p95"], "p99": s["p99"], "count": s["count"]}
        for name, s in result["hist"].items()
    }
    save_artifact("fig4_es_process", format_table(
        ["metric", "value"],
        [[k, str(v)] for k, v in result.items() if k != "hist"],
        title="Figure 4(a) — ES process failure: local restart + checkpoint state"))


@pytest.mark.benchmark(group="fig4")
def test_fig4_node_failure_arm(benchmark, save_artifact):
    result = once(benchmark, lambda: run_es_recovery("node"))
    assert result["recovery_latency"] == pytest.approx(33.6, abs=1.5)
    assert result["state_recovered_subs"] == 1
    assert result["delivered_after_recovery"] == ["after"]
    assert result["es_location"] == "p1b0"  # migrated to the backup node
    benchmark.extra_info["recovery_latency_s"] = result["recovery_latency"]
    benchmark.extra_info["state_recovered_subs"] = result["state_recovered_subs"]
    benchmark.extra_info["hist"] = {
        name: {"p50": s["p50"], "p95": s["p95"], "p99": s["p99"], "count": s["count"]}
        for name, s in result["hist"].items()
    }
    save_artifact("fig4_es_node", format_table(
        ["metric", "value"],
        [[k, str(v)] for k, v in result.items() if k != "hist"],
        title="Figure 4(b) — ES node failure: migration + checkpoint state"))
