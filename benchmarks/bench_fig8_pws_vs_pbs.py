"""Figures 7–8 — PBS's monolith vs PWS on the Phoenix kernel.

Two measurements: the structural one (how much of the job-management
stack each system implements itself — the Figure 7 vs Figure 8 diagram
difference) and the behavioral one (control traffic and dispatch latency
for the same synthetic trace, baseline-subtracted).
"""

import pytest

from benchmarks.conftest import once
from repro.experiments.pws_vs_pbs import (
    RESPONSIBILITIES,
    compare_traffic,
    kernel_supplied_fraction,
)
from repro.experiments.report import format_table
from repro.units import fmt_bytes


@pytest.mark.benchmark(group="fig8")
def test_fig8_structure_and_traffic(benchmark, save_artifact):
    comparison = once(
        benchmark,
        lambda: compare_traffic(job_count=30, seed=0, sim_time=1500.0, poll_interval=10.0),
    )
    pws, pbs = comparison["pws"], comparison["pbs"]
    # Same workload completes on both systems.
    assert pws["submitted"] == pbs["submitted"] == 30
    assert pws["done"] >= 25 and pbs["done"] >= 25
    # Claim 1 (Figures 7 vs 8): the kernel supplies most PBS functions.
    assert kernel_supplied_fraction("pws") >= 0.6
    assert kernel_supplied_fraction("pbs") == 0.0
    # Claim 2: polling vs events — PBS burns far more control messages.
    assert pbs["polls"] > 1000
    assert pws["polls"] == 0
    assert comparison["pws_extra_msgs"] < 0.5 * comparison["pbs_extra_msgs"]
    # Event-driven dispatch beats poll-bounded dispatch.
    assert pws["mean_wait_s"] < pbs["mean_wait_s"]

    structure_rows = [
        [block, "kernel" if RESPONSIBILITIES["pws"][block] else "PWS",
         "PBS (self)" if not RESPONSIBILITIES["pbs"][block] else "kernel"]
        for block in RESPONSIBILITIES["pws"]
    ]
    traffic_rows = [
        ["PWS", pws["done"], f"{pws['mean_wait_s']:.1f}s",
         int(comparison["pws_extra_msgs"]), fmt_bytes(int(comparison["pws_extra_bytes"])),
         int(pws["events_seen"])],
        ["PBS", pbs["done"], f"{pbs['mean_wait_s']:.1f}s",
         int(comparison["pbs_extra_msgs"]), fmt_bytes(int(comparison["pbs_extra_bytes"])),
         int(pbs["polls"])],
    ]
    text = (
        format_table(["function block", "PWS gets it from", "PBS implements"],
                     structure_rows, title="Figures 7 vs 8 — who implements what")
        + "\n\n"
        + format_table(["system", "done", "mean wait", "extra msgs", "extra bytes",
                        "events/polls"],
                       traffic_rows, title="Same 30-job trace, baseline-subtracted traffic")
    )
    save_artifact("fig8_pws_vs_pbs", text)
    benchmark.extra_info["pbs_extra_msgs"] = comparison["pbs_extra_msgs"]
    benchmark.extra_info["pws_extra_msgs"] = comparison["pws_extra_msgs"]
