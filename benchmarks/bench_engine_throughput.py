"""Engine fast-path throughput gate (not a paper artifact).

Measures the simulator's events/sec on the workload that dominates every
large sweep — heartbeat-style deadlines that are almost always cancelled
and re-armed — and the trace's marks/sec on its unobserved fast path.
The "before" leg is :mod:`benchmarks.legacy_engine`, an in-process frozen
copy of the pre-fast-path scheduler, so the speedup ratio compares two
engines inside one interpreter instead of this host against a recorded
wall-clock number.

CI gates on the *ratios* (noise-robust: both legs share the machine) and
on the deterministic operation counts in ``extra_info``; raw rates are
recorded under ``wallclock_*`` keys, which ``check_baseline.py`` reports
but never compares.
"""

import gc
import time

import pytest

from benchmarks.conftest import once
from benchmarks.legacy_engine import LegacySimulator
from repro.experiments.scalability import run_point
from repro.sim import Simulator
from repro.sim.trace import Trace

#: Heartbeat-storm shape: N deadline timers re-armed every interval for R
#: rounds — every arm is cancelled before firing except the final round.
STORM_TIMERS = 2000
STORM_ROUNDS = 60
STORM_INTERVAL = 30.0
STORM_GRACE = 5.0

#: Marks on the unobserved-trace fast path.
MARK_COUNT = 200_000


def _run_storm(sim) -> dict:
    """Drive the heartbeat storm on any engine exposing timer/run/now.

    Returns the operation count (arms + cancels + fires) and wall time.
    Timer ops are the unit of throughput here: each one is a schedule or
    cancel transaction against the engine's pending-event structures.
    """
    fired = [0]

    def beat() -> None:
        fired[0] += 1

    # GC off during the measured window: a collection landing in one leg
    # but not another is the main noise source, and leaving it on favors
    # the *new* engine (the legacy leg allocates per event) — so this is
    # conservative for the speedup ratio.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        timers = [sim.timer(STORM_INTERVAL + STORM_GRACE, beat) for _ in range(STORM_TIMERS)]
        ops = STORM_TIMERS
        now = 0.0
        for _ in range(STORM_ROUNDS):
            now += STORM_INTERVAL
            sim.run(until=now)
            for timer in timers:
                timer.restart()
            ops += 2 * STORM_TIMERS  # one cancel + one re-arm per timer
        sim.run(until=now + STORM_INTERVAL + STORM_GRACE + 1.0)
        wall = time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()
            gc.collect()
    assert fired[0] == STORM_TIMERS  # only the last arming fires
    return {"ops": ops + fired[0], "wall": wall, "fired": fired[0]}


@pytest.mark.benchmark(group="engine")
def test_heartbeat_storm_throughput_gate(benchmark):
    """The tentpole gate: >= 2x events/sec over the pre-fast-path engine.

    Three legs on the identical workload: the frozen legacy engine, the
    current engine with the wheel disabled (heap-only reference), and the
    full wheel engine.  The wheel leg must double the legacy rate; it
    should also beat the heap-only leg (that margin is the wheel itself,
    the rest is free-listed handles + the single-sweep run loop).  Each
    leg runs twice and is scored by its best pass — the ratio of bests is
    far more stable than a single-pass ratio on a shared CI host.
    """

    def run() -> dict:
        legs: dict = {}
        for _ in range(2):
            legacy = _run_storm(LegacySimulator())
            heap_sim = Simulator(seed=0, trace_capacity=0, wheel=False)
            heap_mode = _run_storm(heap_sim)
            wheel_sim = Simulator(seed=0, trace_capacity=0, wheel=True)
            wheel_mode = _run_storm(wheel_sim)
            for name, leg in (("legacy", legacy), ("heap", heap_mode), ("wheel", wheel_mode)):
                rate = leg["ops"] / leg["wall"]
                if name not in legs or rate > legs[name]["rate"]:
                    legs[name] = {**leg, "rate": rate}
        legs["wheel_sim"] = wheel_sim
        legs["heap_sim"] = heap_sim
        return legs

    result = once(benchmark, run)
    legacy, wheel_mode = result["legacy"], result["wheel"]
    wheel_sim, heap_sim = result["wheel_sim"], result["heap_sim"]

    legacy_rate = legacy["rate"]
    wheel_rate = wheel_mode["rate"]
    speedup = wheel_rate / legacy_rate
    # The acceptance gate: the fast path at least doubles the old engine.
    assert speedup >= 2.0, (
        f"wheel engine {wheel_rate:,.0f} ops/s is only {speedup:.2f}x the "
        f"legacy engine's {legacy_rate:,.0f} ops/s (gate: >= 2x)"
    )

    # Deterministic structure proxies (compared against BENCH_BASELINE):
    # the wheel must absorb the deadline churn (no heap traffic for it),
    # and recycling must cover nearly every arm after warm-up.
    assert wheel_sim.events_executed == heap_sim.events_executed
    total_armed = STORM_TIMERS * (STORM_ROUNDS + 1)
    assert wheel_sim.wheel_scheduled == total_armed
    assert wheel_sim.heap_scheduled == 0
    assert wheel_sim.handles_recycled >= total_armed - 2 * STORM_TIMERS
    benchmark.extra_info["storm_ops"] = wheel_mode["ops"]
    benchmark.extra_info["events_executed"] = wheel_sim.events_executed
    benchmark.extra_info["wheel_scheduled"] = wheel_sim.wheel_scheduled
    benchmark.extra_info["heap_scheduled"] = wheel_sim.heap_scheduled
    benchmark.extra_info["handles_recycled"] = wheel_sim.handles_recycled
    benchmark.extra_info["wallclock_legacy_ops_per_s"] = round(legacy_rate)
    benchmark.extra_info["wallclock_heap_ops_per_s"] = round(result["heap"]["rate"])
    benchmark.extra_info["wallclock_wheel_ops_per_s"] = round(wheel_rate)
    benchmark.extra_info["wallclock_speedup_vs_legacy"] = round(speedup, 2)


@pytest.mark.benchmark(group="engine")
def test_trace_mark_fast_path(benchmark):
    """Unobserved marks must skip record construction (the sentinel path).

    Compares marks/sec of ``capacity=0`` against a retaining trace; the
    deterministic check is that both count every mark while the fast path
    stores nothing.
    """

    def run() -> dict:
        fast = Trace(capacity=0)
        start = time.perf_counter()
        for i in range(MARK_COUNT):
            fast.mark("hb.sent", node="n1", seq=i)
        fast_wall = time.perf_counter() - start

        retaining = Trace(capacity=None)
        start = time.perf_counter()
        for i in range(MARK_COUNT):
            retaining.mark("hb.sent", node="n1", seq=i)
        retaining_wall = time.perf_counter() - start
        return {
            "fast": fast, "fast_wall": fast_wall,
            "retaining": retaining, "retaining_wall": retaining_wall,
        }

    result = once(benchmark, run)
    fast, retaining = result["fast"], result["retaining"]
    assert fast.total_marked == MARK_COUNT and len(fast) == 0
    assert retaining.total_marked == MARK_COUNT and len(retaining) == MARK_COUNT
    fast_rate = MARK_COUNT / result["fast_wall"]
    retaining_rate = MARK_COUNT / result["retaining_wall"]
    # The sentinel path must clearly beat eager record construction.
    assert fast_rate >= 1.5 * retaining_rate
    benchmark.extra_info["marks"] = MARK_COUNT
    benchmark.extra_info["wallclock_fast_marks_per_s"] = round(fast_rate)
    benchmark.extra_info["wallclock_retaining_marks_per_s"] = round(retaining_rate)


@pytest.mark.benchmark(group="engine")
def test_sweep_1024_point_throughput(benchmark):
    """The fig6 1024-node point as an end-to-end engine workload: all the
    kernel's heartbeats, detector exports, and monitoring RPCs at 8x the
    original testbed, in one number CI can watch."""

    def run() -> dict:
        start = time.perf_counter()
        row = run_point(1024)
        row["wall"] = time.perf_counter() - start
        return row

    row = once(benchmark, run)
    assert row["rows_per_refresh"] == 1024
    benchmark.extra_info["msgs_per_node_per_s"] = row["msgs_per_node_per_s"]
    benchmark.extra_info["refresh_latency_ms"] = row["refresh_latency_ms"]
    benchmark.extra_info["forward_batches"] = row["forward_batches"]
    benchmark.extra_info["wallclock_point_seconds"] = round(row["wall"], 2)
