"""A4 — aggregate push-down in the bulletin federation (extension).

The paper's GridView fetches cluster-wide rows through the federation's
single access point.  This ablation measures an optional optimization we
added on top: letting the federation compute the banner aggregates
(avg CPU/mem/swap) member-side, so the access point receives
O(partitions) bytes instead of O(nodes) rows per refresh — relevant
exactly where §4.3 worries about thousand-node scale.
"""

import pytest

from benchmarks.conftest import once
from repro.cluster import Cluster, ClusterSpec
from repro.experiments.report import format_dict_rows
from repro.kernel import KernelTimings, PhoenixKernel
from repro.sim import Simulator
from repro.userenv.monitoring import install_gridview


def run_mode(nodes: int, aggregate_mode: bool, seed: int = 0) -> dict:
    sim = Simulator(seed=seed, trace_capacity=20_000)
    cluster = Cluster(sim, ClusterSpec.build(partitions=nodes // 16, computes=14))
    kernel = PhoenixKernel(cluster, timings=KernelTimings(heartbeat_interval=30.0))
    kernel.boot()
    gv = install_gridview(kernel, refresh_interval=30.0, aggregate_mode=aggregate_mode)
    db_node = kernel.placement[("db", cluster.node(gv.node_id).partition_id)]
    sim.run(until=5.0)
    rx0 = sim.trace.counter(f"rx.{db_node}")
    bytes0 = sum(sim.trace.counter(f"net.{n}.bytes") for n in cluster.networks)
    sim.run(until=95.0)
    refreshes = [r for r in sim.trace.records("gridview.refresh") if r.time > 5.0]
    nbytes = sum(sim.trace.counter(f"net.{n}.bytes") for n in cluster.networks) - bytes0
    return {
        "mode": "aggregate" if aggregate_mode else "rows",
        "nodes": nodes,
        "refreshes": len(refreshes),
        "latency_ms": round(1000 * sum(r["latency"] for r in refreshes) / len(refreshes), 3),
        "ap_msgs_per_refresh": round(
            (sim.trace.counter(f"rx.{db_node}") - rx0) / len(refreshes), 1),
        "total_bytes": int(nbytes),
        "snapshot_cpu": gv.latest.avg_cpu_pct,
        "rows_seen": gv.latest.nodes_reporting,
    }


@pytest.mark.benchmark(group="ablation")
def test_aggregate_pushdown_vs_row_fetch(benchmark, save_artifact):
    def run():
        return [run_mode(320, False), run_mode(320, True)]

    rows_mode, agg_mode = once(benchmark, run)
    save_artifact("ablation_aggregate", format_dict_rows(
        [rows_mode, agg_mode],
        ["mode", "nodes", "refreshes", "latency_ms", "ap_msgs_per_refresh", "total_bytes"],
        title="A4 — bulletin row fetch vs aggregate push-down (320 nodes)"))
    # Both modes see the whole cluster and agree on the banner.
    assert rows_mode["rows_seen"] == agg_mode["rows_seen"] == 320
    assert agg_mode["snapshot_cpu"] == pytest.approx(rows_mode["snapshot_cpu"], abs=2.0)
    # Push-down moves fewer bytes overall (the per-row payloads vanish).
    assert agg_mode["total_bytes"] < rows_mode["total_bytes"]
    benchmark.extra_info["bytes_saved"] = rows_mode["total_bytes"] - agg_mode["total_bytes"]
