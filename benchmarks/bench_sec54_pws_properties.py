"""§5.4 / Figure 9 — PWS's fault-tolerance and multi-pool properties.

Property 3: "The scheduling service group ... is created on the basis of
group service with high availability guaranteed, while PBS doesn't
guarantee it" — measured by killing each scheduler mid-trace.

Property 4: "PWS supports multi-pools and dynamic leasing among
different pools" — measured by starving one pool and counting leases.
"""

import pytest

from benchmarks.conftest import once
from repro.cluster import Cluster, ClusterSpec
from repro.experiments.pws_vs_pbs import compare_ha
from repro.experiments.report import format_table
from repro.kernel import KernelTimings, PhoenixKernel
from repro.sim import Simulator
from repro.userenv.pws import PoolSpec, install_pws
from repro.userenv.pws.server import STATUS, SUBMIT
from repro.userenv.pws.server import PORT as PWS_PORT


@pytest.mark.benchmark(group="sec54")
def test_scheduler_ha(benchmark, save_artifact):
    ha = once(benchmark, lambda: compare_ha(job_count=12, seed=0, sim_time=1500.0))
    pws, pbs = ha["pws"], ha["pbs"]
    assert pws["scheduler_alive"] and not pbs["scheduler_alive"]
    assert pws["done"] > pbs["done"]
    rows = [
        ["PWS", "recovered by GSD (checkpointed queue)", pws["done"]],
        ["PBS", "dead until operator action", pbs["done"]],
    ]
    save_artifact("sec54_ha", format_table(
        ["system", "after scheduler process kill", "jobs completed"],
        rows, title="§5.4 property 3 — scheduler fault tolerance"))


def run_leasing_scenario(seed: int = 0) -> dict:
    sim = Simulator(seed=seed)
    cluster = Cluster(sim, ClusterSpec.build(partitions=2, computes=6))
    kernel = PhoenixKernel(cluster, timings=KernelTimings(heartbeat_interval=30.0))
    kernel.boot()
    sim.run(until=6.0)
    computes = cluster.compute_nodes()
    pools = [
        PoolSpec("batch", [n for n in computes if n.startswith("p0")]),
        PoolSpec("interactive", [n for n in computes if n.startswith("p1")], policy="sjf"),
    ]
    server = install_pws(kernel, pools)
    sim.run(until=sim.now + 2.0)

    def rpc(mtype, payload):
        sig = cluster.transport.rpc(
            "p1c0", kernel.placement[("pws", "p0")], PWS_PORT, mtype, payload, timeout=5.0)
        while not sig.fired and sim.peek() is not None:
            sim.step()
        return sig.value

    # Interactive pool owns 7 nodes; ask for 10 -> 3 leased from batch.
    reply = rpc(SUBMIT, {"user": "u", "nodes": 10, "cpus_per_node": 2,
                         "duration": 60.0, "pool": "interactive"})
    sim.run(until=sim.now + 2.0)
    leases_during = len(server.pm.leases)
    lease_marks = len(sim.trace.records("pws.lease"))
    sim.run(until=sim.now + 90.0)
    status = rpc(STATUS, {"job_id": reply["job_id"]})
    return {
        "leases_during": leases_during,
        "lease_marks": lease_marks,
        "leases_after": len(server.pm.leases),
        "job_state": status["job"]["state"],
        "nodes_used": status["job"]["assigned_nodes"],
    }


@pytest.mark.benchmark(group="sec54")
def test_multipool_dynamic_leasing(benchmark, save_artifact):
    result = once(benchmark, run_leasing_scenario)
    assert result["leases_during"] == 3
    assert result["lease_marks"] == 3
    assert result["leases_after"] == 0  # returned on completion
    assert result["job_state"] == "done"
    borrowed = [n for n in result["nodes_used"] if n.startswith("p0")]
    assert len(borrowed) == 3
    save_artifact("sec54_leasing", format_table(
        ["metric", "value"],
        [[k, str(v)] for k, v in result.items()],
        title="§5.4 property 4 — multi-pool dynamic leasing"))
