"""A5 — load-balancing strategy ablation (business runtime extension).

The paper's business application runtime "guarantees their
high-availability and load-balancing" without specifying the balancing
policy.  This ablation quantifies the choice under heavy-tailed request
service times: least-loaded routing cuts tail latency versus blind
round-robin at equal throughput.
"""

import pytest

from benchmarks.conftest import once
from repro.cluster import ClusterSpec
from repro.experiments.report import format_dict_rows
from repro.kernel import KernelTimings
from repro.sim import Simulator
from repro.userenv.business import BizAppSpec, RequestDriver, TierSpec, install_business_runtime
from repro.userenv.construction import ConstructionTool


def run_strategy(strategy: str, seed: int = 0) -> dict:
    sim = Simulator(seed=seed)
    tool = ConstructionTool(sim)
    kernel = tool.build(
        ClusterSpec.build(partitions=2, computes=5),
        timings=KernelTimings(heartbeat_interval=30.0),
    )
    sim.run(until=6.0)
    runtime = install_business_runtime(kernel, partition_id="p1")
    sim.run(until=sim.now + 2.0)
    runtime.deploy(BizAppSpec(name="api", tiers=(TierSpec("web", 4, cpus=1),)))
    sim.run(until=sim.now + 3.0)
    driver = RequestDriver(
        runtime, "api", {"web": 0.06},
        strategy=strategy, capacity_per_replica=1,
        heavy_tail_sigma=1.3, rng_name=f"ablation.{strategy}",
    )
    driver.start(rate_per_s=20.0, duration=120.0)
    sim.run(until=sim.now + 240.0)
    summary = driver.stats.latency_summary()
    return {
        "strategy": strategy,
        "completed": driver.stats.completed,
        "failed": driver.stats.failed,
        "p50_ms": round(1000 * summary.p50, 1),
        "p95_ms": round(1000 * summary.p95, 1),
        "max_ms": round(1000 * summary.max, 1),
    }


@pytest.mark.benchmark(group="ablation")
def test_balancer_strategy_tail_latency(benchmark, save_artifact):
    rows = once(benchmark, lambda: [run_strategy("round_robin"), run_strategy("least_loaded")])
    rr, ll = rows
    save_artifact("ablation_balancer", format_dict_rows(
        rows, ["strategy", "completed", "failed", "p50_ms", "p95_ms", "max_ms"],
        title="A5 — balancer strategy under heavy-tailed service times"))
    assert rr["failed"] == ll["failed"] == 0
    assert abs(rr["completed"] - ll["completed"]) < 0.1 * rr["completed"]
    assert ll["p95_ms"] < rr["p95_ms"]
    benchmark.extra_info["p95_improvement"] = rr["p95_ms"] / ll["p95_ms"]
