"""Table 2 — three unhealthy situations for the GSD (§5.1).

Paper (30 s heartbeat): process 30/0.29/2.03 s; node 30/0.3/2.95 s;
network 30 s/348 us/0 s.
"""

import pytest

from benchmarks.conftest import once
from repro.experiments.fault_tables import render_table, run_table


@pytest.mark.benchmark(group="table2")
def test_table2_gsd(benchmark, save_artifact):
    results = once(benchmark, lambda: run_table("gsd", heartbeat_interval=30.0))
    save_artifact("table2_gsd", render_table("gsd", results))
    by_situation = {r.situation: r for r in results}
    for r in results:
        assert r.detect == pytest.approx(30.1, abs=0.3)
    assert by_situation["process"].diagnose == pytest.approx(0.29, abs=0.02)
    assert by_situation["process"].recover == pytest.approx(2.03, abs=0.15)
    assert by_situation["node"].diagnose == pytest.approx(0.3, abs=0.05)
    assert by_situation["node"].recover == pytest.approx(2.95, abs=0.2)
    assert by_situation["network"].diagnose == pytest.approx(348e-6, rel=0.05)
    assert by_situation["network"].recover == 0.0
    benchmark.extra_info["rows"] = {
        r.situation: [r.detect, r.diagnose, r.recover] for r in results
    }
