"""Shared helpers for the benchmark harness.

Every bench regenerates one paper table/figure.  Besides the
pytest-benchmark timing, each bench saves its rendered artifact under
``benchmarks/results/`` (and prints it, visible with ``pytest -s``), so
``pytest benchmarks/ --benchmark-only`` leaves the reproduced tables on
disk for EXPERIMENTS.md cross-checking.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture()
def save_artifact():
    """Callable(name, text): persist + print a regenerated table/figure."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save


def once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer.

    These harnesses are deterministic simulations — repeating them only
    re-measures interpreter noise, so one round is the honest protocol.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
