"""Figure 6 / §5.3 — monitoring the Dawning 4000A at scale.

The sweep regenerates the paper's scalability evidence: GridView built
purely on bulletin/event/configuration interfaces monitors 64 through
640 nodes (the Dawning 4000A point) with flat per-node kernel traffic,
near-constant collection latency, and an access-point load that scales
with partitions, not nodes.  The Figure 6 status board is rendered for
the 640-node point.
"""

import pytest

from benchmarks.conftest import once
from repro.experiments.scalability import render_sweep, run_sweep
from repro.userenv.monitoring import render_snapshot

#: The paper's machine is the 640-node point; 1024–4096 substantiate §1's
#: "easily extends to increasing system scale" (the engine's timer-wheel
#: fast path is what makes the 4096 point affordable in CI).
SWEEP = (64, 128, 256, 640, 1024, 2048, 4096)


@pytest.mark.benchmark(group="fig6")
def test_fig6_scalability_sweep(benchmark, save_artifact):
    rows = once(benchmark, lambda: run_sweep(SWEEP))
    save_artifact("fig6_scalability", render_sweep(rows))
    by_nodes = {r["nodes"]: r for r in rows}
    # Every node is visible from the single access point at every scale.
    for nodes in SWEEP:
        assert by_nodes[nodes]["rows_per_refresh"] == nodes
    # Per-node kernel traffic is flat (the partitioned design's point) —
    # all the way to the 4096-node point, 6.4x the paper's machine.
    small, big = by_nodes[64], by_nodes[SWEEP[-1]]
    assert big["msgs_per_node_per_s"] == pytest.approx(small["msgs_per_node_per_s"], rel=0.25)
    # Collection latency grows far slower than 64x node count.
    assert big["refresh_latency_ms"] < 5 * small["refresh_latency_ms"]
    # Federation batching: the event storm crosses partition boundaries
    # in far fewer datagrams than events forwarded (Dawning 4000A point).
    storm = by_nodes[640]
    assert storm["forwarded_events"] > 0
    assert storm["forward_batches"] < storm["forwarded_events"]
    benchmark.extra_info["sweep"] = {
        r["nodes"]: {
            "latency_ms": r["refresh_latency_ms"],
            "msgs_per_node_per_s": r["msgs_per_node_per_s"],
            "forward_batches": r["forward_batches"],
            "forwarded_events": r["forwarded_events"],
        }
        for r in rows
    }
    # Per-phase latency histogram snapshots (deterministic; 640-node point).
    benchmark.extra_info["hist_640"] = {
        name: {"p50": s["p50"], "p95": s["p95"], "p99": s["p99"], "count": s["count"]}
        for name, s in by_nodes[640]["hist"].items()
    }
    # Figure 6 status board for the full machine, common load.
    snapshot = by_nodes[640]["snapshot"]
    assert 3.0 < snapshot.avg_cpu_pct < 9.0  # paper: 5.5%
    assert 15.0 < snapshot.avg_mem_pct < 23.0  # paper: 18.6%
    assert snapshot.avg_swap_pct < 2.0  # paper: 0.72%
    save_artifact("fig6_statusboard", render_snapshot(snapshot, columns=10))
