"""Figure 6 / §5.3 — monitoring the Dawning 4000A at scale.

The sweep regenerates the paper's scalability evidence: GridView built
purely on bulletin/event/configuration interfaces monitors 64 through
640 nodes (the Dawning 4000A point) with flat per-node kernel traffic,
near-constant collection latency, and an access-point load that scales
with partitions, not nodes.  The Figure 6 status board is rendered for
the 640-node point.
"""

import pytest

from benchmarks.conftest import once
from repro.experiments.scalability import render_sweep, run_point, run_sweep
from repro.userenv.monitoring import render_snapshot

#: The paper's machine is the 640-node point; 1024–4096 substantiate §1's
#: "easily extends to increasing system scale" (the engine's timer-wheel
#: fast path is what makes the 4096 point affordable in CI).
SWEEP = (64, 128, 256, 640, 1024, 2048, 4096)

#: Quiescence fast-forward extension point — 25.6x the paper's machine.
#: Exact execution at this scale would blow the CI budget; fast-forward
#: (DESIGN.md §13) batch-accounts the healthy heartbeat/export cascades
#: while keeping every counter, histogram, and record identical (the
#: differential harness in tests/sim/test_fast_forward_equivalence.py
#: enforces that bit-for-bit).
FF_NODES = 16384

#: Result keys that legitimately differ between engines (execution-shape
#: telemetry and non-scalar payloads); everything else must be identical.
_ENGINE_SHAPE_KEYS = ("ff_skipped", "events_executed", "snapshot")

#: Two-tier federation points (DESIGN.md §16): region_size ≈ √partitions,
#: the analytic optimum for the O(P/R + R) per-partition datagram bound.
TWO_TIER_POINTS = ((1024, 8), (4096, 16), (FF_NODES, 32))
#: Flat-mesh references for the same scales.  There is deliberately no
#: flat 16384 point: an all-pairs storm there is ~1M datagrams — the
#: O(P^2) wall this topology exists to break.
FLAT_REFS = (1024, 4096)


@pytest.mark.benchmark(group="fig6")
def test_fig6_scalability_sweep(benchmark, save_artifact):
    rows = once(benchmark, lambda: run_sweep(SWEEP))
    save_artifact("fig6_scalability", render_sweep(rows))
    by_nodes = {r["nodes"]: r for r in rows}
    # Every node is visible from the single access point at every scale.
    for nodes in SWEEP:
        assert by_nodes[nodes]["rows_per_refresh"] == nodes
    # Per-node kernel traffic is flat (the partitioned design's point) —
    # all the way to the 4096-node point, 6.4x the paper's machine.
    small, big = by_nodes[64], by_nodes[SWEEP[-1]]
    assert big["msgs_per_node_per_s"] == pytest.approx(small["msgs_per_node_per_s"], rel=0.25)
    # Collection latency grows far slower than 64x node count.
    assert big["refresh_latency_ms"] < 5 * small["refresh_latency_ms"]
    # Federation batching: the event storm crosses partition boundaries
    # in far fewer datagrams than events forwarded (Dawning 4000A point).
    storm = by_nodes[640]
    assert storm["forwarded_events"] > 0
    assert storm["forward_batches"] < storm["forwarded_events"]
    benchmark.extra_info["sweep"] = {
        r["nodes"]: {
            "latency_ms": r["refresh_latency_ms"],
            "msgs_per_node_per_s": r["msgs_per_node_per_s"],
            "forward_batches": r["forward_batches"],
            "forwarded_events": r["forwarded_events"],
        }
        for r in rows
    }
    # Per-phase latency histogram snapshots (deterministic; 640-node point).
    benchmark.extra_info["hist_640"] = {
        name: {"p50": s["p50"], "p95": s["p95"], "p99": s["p99"], "count": s["count"]}
        for name, s in by_nodes[640]["hist"].items()
    }
    # Figure 6 status board for the full machine, common load.
    snapshot = by_nodes[640]["snapshot"]
    assert 3.0 < snapshot.avg_cpu_pct < 9.0  # paper: 5.5%
    assert 15.0 < snapshot.avg_mem_pct < 23.0  # paper: 18.6%
    assert snapshot.avg_swap_pct < 2.0  # paper: 0.72%
    save_artifact("fig6_statusboard", render_snapshot(snapshot, columns=10))


@pytest.mark.benchmark(group="fig6")
def test_fig6_extended_fast_forward_point(benchmark, save_artifact):
    """The ≥16384-node extension of Figure 6, affordable only with
    quiescence fast-forward.  The 64-node point runs on both engines as
    an in-bench differential gate: every measured quantity must be
    bit-identical before the FF 16384 point is trusted."""

    def work():
        small = run_point(64)
        small_ff = run_point(64, fast_forward=True)
        big = run_point(FF_NODES, fast_forward=True)
        return small, small_ff, big

    small, small_ff, big = once(benchmark, work)

    # Twin-engine gate: identical measurements, different execution shape.
    for key, value in small.items():
        if key not in _ENGINE_SHAPE_KEYS:
            assert small_ff[key] == value, f"engine divergence on {key!r}"
    assert small_ff["ff_skipped"] > 0
    assert small_ff["events_executed"] < small["events_executed"]

    # The 25.6x-scale point behaves like the paper's machine.
    assert big["rows_per_refresh"] == FF_NODES
    assert big["partitions"] == FF_NODES // 16
    assert big["msgs_per_node_per_s"] == pytest.approx(small["msgs_per_node_per_s"], rel=0.25)
    assert big["refresh_latency_ms"] < 5 * small["refresh_latency_ms"]
    # Fast-forward did the heavy lifting: hundreds of thousands of
    # healthy cascades batch-accounted instead of executed.
    assert big["ff_skipped"] > 100_000

    benchmark.extra_info["ff_16384"] = {
        "latency_ms": big["refresh_latency_ms"],
        "msgs_per_node_per_s": big["msgs_per_node_per_s"],
        "access_point_msgs_per_refresh": big["access_point_msgs_per_refresh"],
        "ff_skipped": big["ff_skipped"],
    }
    save_artifact(
        "fig6_ff_extension",
        render_sweep([small, big])
        + f"\n(16384-node point fast-forwarded: {big['ff_skipped']} cascades "
        f"batch-accounted, {big['events_executed']} events executed)\n",
    )


@pytest.mark.benchmark(group="fig6")
def test_fig6_two_tier_federation(benchmark, save_artifact):
    """Two-tier federation breaks the O(P^2) all-pairs wall (DESIGN.md
    §16).  Every partition publishes one event simultaneously; flat
    federation answers with P-1 datagrams per partition (quadratic in
    total), the region topology with O(P/R + R).  The per-partition
    counts land in the bench JSON under one-sided ``growth_`` keys, so
    check_baseline.py fails any regression back toward super-linear
    growth while letting further improvements through silently."""

    def work():
        gate = run_point(256, region_size=4, allpairs_storm=True)
        gate_ff = run_point(256, region_size=4, allpairs_storm=True, fast_forward=True)
        flat = {n: run_point(n, fast_forward=True, allpairs_storm=True) for n in FLAT_REFS}
        two = {
            n: run_point(n, fast_forward=True, region_size=r, allpairs_storm=True)
            for n, r in TWO_TIER_POINTS
        }
        return gate, gate_ff, flat, two

    gate, gate_ff, flat, two = once(benchmark, work)

    # Twin-engine gate on a two-tier point: fast-forward must not change
    # any measured quantity when regions are on either.
    for key, value in gate.items():
        if key not in _ENGINE_SHAPE_KEYS:
            assert gate_ff[key] == value, f"engine divergence on {key!r}"
    assert gate_ff["ff_skipped"] > 0

    # Full machine visibility survives the digested cross-region path.
    for nodes, region_size in TWO_TIER_POINTS:
        point = two[nodes]
        assert point["rows_per_refresh"] == nodes
        assert point["regions"] == point["partitions"] // region_size
        assert point["allpairs"]["cross"] > 0  # digests actually crossed regions

    # At matched scales the two-tier all-pairs storm costs each
    # partition strictly fewer federation datagrams than the flat mesh.
    for nodes in FLAT_REFS:
        assert flat[nodes]["allpairs"]["per_partition"] > 2 * two[nodes]["allpairs"]["per_partition"]

    # Flat per-partition cost is Θ(P): 4x the partitions, ~4x the cost.
    flat_growth = (
        flat[4096]["allpairs"]["per_partition"] / flat[1024]["allpairs"]["per_partition"]
    )
    assert flat_growth > 3.0
    # Two-tier per-partition cost at region_size ≈ √P grows ~√P: 16x the
    # partitions from 1024 to 16384 nodes must cost well under 8x.
    two_growth = (
        two[FF_NODES]["allpairs"]["per_partition"] / two[1024]["allpairs"]["per_partition"]
    )
    assert two_growth < 8.0

    benchmark.extra_info["two_tier"] = {
        nodes: {
            "regions": two[nodes]["regions"],
            "allpairs_intra": two[nodes]["allpairs"]["intra"],
            "allpairs_cross": two[nodes]["allpairs"]["cross"],
        }
        for nodes, _ in TWO_TIER_POINTS
    }
    # One-sided guards: check_baseline.py fails only if these grow.
    benchmark.extra_info["growth_allpairs_per_partition"] = {
        f"flat_{nodes}": flat[nodes]["allpairs"]["per_partition"] for nodes in FLAT_REFS
    } | {
        f"two_tier_{nodes}": two[nodes]["allpairs"]["per_partition"]
        for nodes, _ in TWO_TIER_POINTS
    }
    benchmark.extra_info["growth_two_tier_ratio_16384_over_1024"] = two_growth

    lines = ["§5.3 extension — all-pairs storm, flat mesh vs two-tier federation", ""]
    lines.append(f"{'nodes':>7} {'parts':>6} {'topology':>12} {'datagrams':>10} {'per-part':>9}")
    for nodes in FLAT_REFS:
        ap = flat[nodes]["allpairs"]
        lines.append(
            f"{nodes:>7} {flat[nodes]['partitions']:>6} {'flat':>12} "
            f"{ap['batches']:>10.0f} {ap['per_partition']:>9.1f}"
        )
    for nodes, region_size in TWO_TIER_POINTS:
        ap = two[nodes]["allpairs"]
        lines.append(
            f"{nodes:>7} {two[nodes]['partitions']:>6} {f'regions/{region_size}':>12} "
            f"{ap['batches']:>10.0f} {ap['per_partition']:>9.1f}"
        )
    lines.append("")
    lines.append(f"flat growth 1024->4096: {flat_growth:.2f}x   "
                 f"two-tier growth 1024->16384: {two_growth:.2f}x")
    save_artifact("fig6_two_tier", "\n".join(lines))
