"""Figure 6 / §5.3 — monitoring the Dawning 4000A at scale.

The sweep regenerates the paper's scalability evidence: GridView built
purely on bulletin/event/configuration interfaces monitors 64 through
640 nodes (the Dawning 4000A point) with flat per-node kernel traffic,
near-constant collection latency, and an access-point load that scales
with partitions, not nodes.  The Figure 6 status board is rendered for
the 640-node point.
"""

import pytest

from benchmarks.conftest import once
from repro.experiments.scalability import render_sweep, run_point, run_sweep
from repro.userenv.monitoring import render_snapshot

#: The paper's machine is the 640-node point; 1024–4096 substantiate §1's
#: "easily extends to increasing system scale" (the engine's timer-wheel
#: fast path is what makes the 4096 point affordable in CI).
SWEEP = (64, 128, 256, 640, 1024, 2048, 4096)

#: Quiescence fast-forward extension point — 25.6x the paper's machine.
#: Exact execution at this scale would blow the CI budget; fast-forward
#: (DESIGN.md §13) batch-accounts the healthy heartbeat/export cascades
#: while keeping every counter, histogram, and record identical (the
#: differential harness in tests/sim/test_fast_forward_equivalence.py
#: enforces that bit-for-bit).
FF_NODES = 16384

#: Result keys that legitimately differ between engines (execution-shape
#: telemetry and non-scalar payloads); everything else must be identical.
_ENGINE_SHAPE_KEYS = ("ff_skipped", "events_executed", "snapshot")


@pytest.mark.benchmark(group="fig6")
def test_fig6_scalability_sweep(benchmark, save_artifact):
    rows = once(benchmark, lambda: run_sweep(SWEEP))
    save_artifact("fig6_scalability", render_sweep(rows))
    by_nodes = {r["nodes"]: r for r in rows}
    # Every node is visible from the single access point at every scale.
    for nodes in SWEEP:
        assert by_nodes[nodes]["rows_per_refresh"] == nodes
    # Per-node kernel traffic is flat (the partitioned design's point) —
    # all the way to the 4096-node point, 6.4x the paper's machine.
    small, big = by_nodes[64], by_nodes[SWEEP[-1]]
    assert big["msgs_per_node_per_s"] == pytest.approx(small["msgs_per_node_per_s"], rel=0.25)
    # Collection latency grows far slower than 64x node count.
    assert big["refresh_latency_ms"] < 5 * small["refresh_latency_ms"]
    # Federation batching: the event storm crosses partition boundaries
    # in far fewer datagrams than events forwarded (Dawning 4000A point).
    storm = by_nodes[640]
    assert storm["forwarded_events"] > 0
    assert storm["forward_batches"] < storm["forwarded_events"]
    benchmark.extra_info["sweep"] = {
        r["nodes"]: {
            "latency_ms": r["refresh_latency_ms"],
            "msgs_per_node_per_s": r["msgs_per_node_per_s"],
            "forward_batches": r["forward_batches"],
            "forwarded_events": r["forwarded_events"],
        }
        for r in rows
    }
    # Per-phase latency histogram snapshots (deterministic; 640-node point).
    benchmark.extra_info["hist_640"] = {
        name: {"p50": s["p50"], "p95": s["p95"], "p99": s["p99"], "count": s["count"]}
        for name, s in by_nodes[640]["hist"].items()
    }
    # Figure 6 status board for the full machine, common load.
    snapshot = by_nodes[640]["snapshot"]
    assert 3.0 < snapshot.avg_cpu_pct < 9.0  # paper: 5.5%
    assert 15.0 < snapshot.avg_mem_pct < 23.0  # paper: 18.6%
    assert snapshot.avg_swap_pct < 2.0  # paper: 0.72%
    save_artifact("fig6_statusboard", render_snapshot(snapshot, columns=10))


@pytest.mark.benchmark(group="fig6")
def test_fig6_extended_fast_forward_point(benchmark, save_artifact):
    """The ≥16384-node extension of Figure 6, affordable only with
    quiescence fast-forward.  The 64-node point runs on both engines as
    an in-bench differential gate: every measured quantity must be
    bit-identical before the FF 16384 point is trusted."""

    def work():
        small = run_point(64)
        small_ff = run_point(64, fast_forward=True)
        big = run_point(FF_NODES, fast_forward=True)
        return small, small_ff, big

    small, small_ff, big = once(benchmark, work)

    # Twin-engine gate: identical measurements, different execution shape.
    for key, value in small.items():
        if key not in _ENGINE_SHAPE_KEYS:
            assert small_ff[key] == value, f"engine divergence on {key!r}"
    assert small_ff["ff_skipped"] > 0
    assert small_ff["events_executed"] < small["events_executed"]

    # The 25.6x-scale point behaves like the paper's machine.
    assert big["rows_per_refresh"] == FF_NODES
    assert big["partitions"] == FF_NODES // 16
    assert big["msgs_per_node_per_s"] == pytest.approx(small["msgs_per_node_per_s"], rel=0.25)
    assert big["refresh_latency_ms"] < 5 * small["refresh_latency_ms"]
    # Fast-forward did the heavy lifting: hundreds of thousands of
    # healthy cascades batch-accounted instead of executed.
    assert big["ff_skipped"] > 100_000

    benchmark.extra_info["ff_16384"] = {
        "latency_ms": big["refresh_latency_ms"],
        "msgs_per_node_per_s": big["msgs_per_node_per_s"],
        "access_point_msgs_per_refresh": big["access_point_msgs_per_refresh"],
        "ff_skipped": big["ff_skipped"],
    }
    save_artifact(
        "fig6_ff_extension",
        render_sweep([small, big])
        + f"\n(16384-node point fast-forwarded: {big['ff_skipped']} cascades "
        f"batch-accounted, {big['events_executed']} events executed)\n",
    )
