"""Table 3 — three unhealthy situations for the event service (§5.1).

Paper (30 s heartbeat): process 30 s/12 us/0.12 s; node 30/0.3/2.95 s;
network 30 s/12 us/0 s.  Our node-failure recovery lands ~3.2 s because
the migrated service group restarts sequentially after the GSD (see
EXPERIMENTS.md).
"""

import pytest

from benchmarks.conftest import once
from repro.experiments.fault_tables import render_table, run_table


@pytest.mark.benchmark(group="table3")
def test_table3_es(benchmark, save_artifact):
    results = once(benchmark, lambda: run_table("es", heartbeat_interval=30.0))
    save_artifact("table3_es", render_table("es", results))
    by_situation = {r.situation: r for r in results}
    for r in results:
        assert r.detect == pytest.approx(30.05, abs=0.3)
    assert by_situation["process"].diagnose == pytest.approx(12e-6, rel=0.05)
    assert by_situation["process"].recover == pytest.approx(0.115, abs=0.03)
    assert by_situation["node"].diagnose == pytest.approx(0.3, abs=0.05)
    assert by_situation["node"].recover == pytest.approx(3.2, abs=0.3)
    assert by_situation["network"].diagnose == pytest.approx(12e-6, rel=0.05)
    assert by_situation["network"].recover == 0.0
    benchmark.extra_info["rows"] = {
        r.situation: [r.detect, r.diagnose, r.recover] for r in results
    }
