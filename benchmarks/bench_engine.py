"""Engine throughput benchmarks (not a paper artifact; guards against
performance regressions that would make the 640-node sweeps painful)."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.kernel import KernelTimings, PhoenixKernel
from repro.sim import Simulator


@pytest.mark.benchmark(group="engine")
def test_event_loop_throughput(benchmark):
    def run():
        sim = Simulator(seed=0)

        def ping_pong():
            count = 0
            while count < 20_000:
                yield 0.001
                count += 1
            return count

        sim.spawn(ping_pong())
        sim.run()
        return sim.events_executed

    executed = benchmark(run)
    assert executed >= 20_000


@pytest.mark.benchmark(group="engine")
def test_booted_cluster_simulation_rate(benchmark):
    """Simulate 60 s of a quiet 136-node kernel (the paper testbed)."""

    def run():
        sim = Simulator(seed=0, trace_capacity=10_000)
        cluster = Cluster(sim, ClusterSpec.paper_fault_testbed())
        kernel = PhoenixKernel(cluster, timings=KernelTimings(heartbeat_interval=30.0))
        kernel.boot()
        sim.run(until=60.0)
        return sim.events_executed

    executed = benchmark.pedantic(run, rounds=1, iterations=1)
    assert executed > 1000


@pytest.mark.benchmark(group="engine")
def test_rpc_storm_heap_stays_flat(benchmark):
    """10k sequential RPCs: guards the timer-leak fix — before it, every
    reply left its timeout event in the heap (peak pending == N)."""

    def run():
        sim = Simulator(seed=0, trace_capacity=10_000)
        cluster = Cluster(sim, ClusterSpec.build(partitions=1, computes=2))
        cluster.transport.bind("p0c1", "svc", lambda msg: {"echo": msg.payload})
        peak = 0
        for i in range(10_000):
            sig = cluster.transport.rpc("p0c0", "p0c1", "svc", "q", {"i": i}, timeout=30.0)
            peak = max(peak, sim.pending_events)
            while not sig.fired:
                sim.step()
        return peak

    peak = benchmark.pedantic(run, rounds=1, iterations=1)
    assert peak <= 4  # O(in-flight), not O(history)
