"""Frozen copy of the pre-fast-path event scheduler (the PR-4 engine).

This is the "before" leg of the engine throughput gate in
``bench_engine_throughput.py``: a faithful trim of the old
``repro.sim.core`` hot path — per-event ``EventHandle`` allocation, heap
push + lazy-delete for every timer, and the ``peek()`` + ``step()`` run
loop that swept cancelled heap tops twice per event.  Benchmarking
against an in-process copy keeps the speedup ratio robust to host speed:
both legs run in the same interpreter, so only the engine differs.

Do not "improve" this module — its obsolescence is the point.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Callable
from typing import Any

from repro.errors import SimulationError


class LegacyEventHandle:
    """A scheduled callback; cancellable until it fires."""

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled", "fired", "_sim")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple[Any, ...],
        sim: "LegacySimulator | None" = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancelled()

    @property
    def pending(self) -> bool:
        return not self.cancelled and not self.fired


class LegacyTimer:
    """Restartable one-shot timer over the legacy scheduler."""

    __slots__ = ("_sim", "_delay", "_callback", "_args", "_priority", "_handle")

    def __init__(
        self,
        sim: "LegacySimulator",
        delay: float,
        callback: Callable[..., Any],
        args: tuple[Any, ...] = (),
        priority: int = 0,
    ) -> None:
        self._sim = sim
        self._delay = delay
        self._callback = callback
        self._args = args
        self._priority = priority
        self._handle: LegacyEventHandle | None = sim.schedule(
            delay, callback, *args, priority=priority
        )

    @property
    def active(self) -> bool:
        return self._handle is not None and self._handle.pending

    def cancel(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def restart(self, delay: float | None = None) -> None:
        self.cancel()
        if delay is not None:
            self._delay = delay
        self._handle = self._sim.schedule(
            self._delay, self._callback, *self._args, priority=self._priority
        )


class LegacySimulator:
    """The pre-fast-path engine: heap-only, allocation per event."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, int, LegacyEventHandle]] = []
        self._seq = 0
        self._dead = 0
        self._running = False
        self._stopped = False
        self.events_executed = 0

    @property
    def now(self) -> float:
        return self._now

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> LegacyEventHandle:
        if not math.isfinite(delay) or delay < 0:
            raise SimulationError(f"invalid delay {delay!r}")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> LegacyEventHandle:
        if not math.isfinite(time) or time < self._now:
            raise SimulationError(f"cannot schedule at {time!r} (now={self._now!r})")
        self._seq += 1
        handle = LegacyEventHandle(time, priority, self._seq, callback, args, sim=self)
        heapq.heappush(self._heap, (time, priority, self._seq, handle))
        return handle

    def timer(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> LegacyTimer:
        return LegacyTimer(self, delay, callback, args, priority=priority)

    def peek(self) -> float | None:
        self._drop_dead()
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        self._drop_dead()
        if not self._heap:
            return False
        handle = heapq.heappop(self._heap)[3]
        self._now = handle.time
        handle.fired = True
        self.events_executed += 1
        handle.callback(*handle.args)
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        if until is not None and until < self._now:
            raise SimulationError(f"until={until!r} is in the past (now={self._now!r})")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while not self._stopped:
                if max_events is not None and executed >= max_events:
                    break
                next_time = self.peek()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
                executed += 1
        finally:
            self._running = False
        if until is not None and not self._stopped and self._now < until:
            self._now = until

    def stop(self) -> None:
        self._stopped = True

    @property
    def pending_events(self) -> int:
        return len(self._heap) - self._dead

    def _drop_dead(self) -> None:
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
            self._dead -= 1

    def _note_cancelled(self) -> None:
        self._dead += 1
        if self._dead > 64 and self._dead * 2 > len(self._heap):
            self._heap = [entry for entry in self._heap if not entry[3].cancelled]
            heapq.heapify(self._heap)
            self._dead = 0
