"""Serving campaign — the business-hosting tier under open-loop load.

A reduced-budget run of the ``repro serve`` campaign: three request
classes through admission control and the SLO autoscaler, with the
mid-run worker kill/recover cycle.  The deterministic gates (per-class
p99 within SLO, zero lost-capacity drift, balanced SLA transitions)
must hold at benchmark scale exactly as they do at the full ~1M-request
acceptance run.
"""

import pytest

from benchmarks.conftest import once
from repro.experiments.serve_campaign import (
    check_serve,
    render_serve,
    run_serve_campaign,
)


@pytest.mark.benchmark(group="serve")
def test_serve_campaign_50k(benchmark, save_artifact):
    result = once(benchmark, lambda: run_serve_campaign(requests=50_000, seed=0))
    save_artifact("serve_campaign", render_serve(result))
    assert check_serve(result) == []
    info = benchmark.extra_info
    info["generated"] = result.generated
    info["completed"] = result.completed
    info["rejected"] = result.rejected
    info["failed"] = result.failed
    info["drift"] = result.drift
    info["autoscale_up"] = result.autoscale_up
    info["autoscale_down"] = result.autoscale_down
    info["sla_violations"] = result.sla_violations
    info["p99"] = {name: entry["p99"]
                   for name, entry in sorted(result.classes.items())}
