"""Table 4 — Phoenix's impact on Linpack performance (§5.2).

Paper claim: overhead stays in the low single-digit percents at 4, 16,
64 and 128 CPUs — "Phoenix kernel has little impact on scientific
computing".
"""

import pytest

from benchmarks.conftest import once
from repro.experiments.linpack_impact import (
    render_simulated,
    render_table4,
    run_simulated_table4,
    run_table4,
)
from repro.workloads.linpack import run_real_linpack


@pytest.mark.benchmark(group="table4")
def test_table4_model(benchmark, save_artifact):
    rows = once(benchmark, run_table4)
    save_artifact("table4_linpack", render_table4(rows))
    assert [r["cpus"] for r in rows] == [4, 16, 64, 128]
    for row in rows:
        assert 0.0 < row["overhead_pct"] < 2.5
    benchmark.extra_info["overhead_pct"] = {int(r["cpus"]): r["overhead_pct"] for r in rows}


@pytest.mark.benchmark(group="table4")
def test_table4_simulated_hpl(benchmark, save_artifact):
    """The executable variant: an HPL-shaped job run inside the simulator
    with and without the kernel's daemons.  Overhead (and its mild growth
    with scale — OS noise amplified through barriers) emerges from the
    run rather than a formula."""
    rows = once(benchmark, run_simulated_table4)
    save_artifact("table4_simulated", render_simulated(rows))
    for row in rows:
        assert 0.0 < row["overhead_pct"] < 2.5
    overheads = [r["overhead_pct"] for r in rows]
    assert overheads[-1] > overheads[0]  # grows with scale...
    assert overheads[-1] < 3 * overheads[0]  # ...but does not blow up
    benchmark.extra_info["overhead_pct"] = {int(r["cpus"]): r["overhead_pct"] for r in rows}


@pytest.mark.benchmark(group="table4")
def test_table4_real_kernel(benchmark):
    """Hardware-grounded cross-check: an actual LU solve runs at a sane
    rate and produces a correct solution (overhead deltas are too noisy
    to assert on a shared host; see EXPERIMENTS.md)."""
    result = once(benchmark, lambda: run_real_linpack(n=700, repeats=3))
    assert result["gflops"] > 0.1
    assert result["residual"] < 1e-8
    benchmark.extra_info["gflops"] = result["gflops"]
